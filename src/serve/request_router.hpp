// Multi-table serving, part 2: the request router.
//
// A serving process consumes a stream of heterogeneous requests — tolerance
// checks, fault sweeps, delivery measurements, certifications — each tagged
// with the name of the table it targets. serve_requests() is the batched
// executor over a TableRegistry:
//
//  * requests are read into bounded windows (batch_size * workers), so
//    memory is constant in the stream length, exactly like the fault-sweep
//    engine this layer wraps;
//  * within a window, requests are grouped by table (first-appearance
//    order) and each table's handle is acquired ONCE — a warm registry
//    therefore serves the whole group with zero preprocessing, and handles
//    pin their entries for the duration of the window even if a later
//    acquire evicts them;
//  * execution fans the window across parallel_for_chunks workers. The
//    execution order lists each table's requests contiguously, so a worker
//    chunk builds one SrgScratch per table it crosses and reuses it across
//    that table's requests;
//  * every response is a pure function of (request, table contents) — each
//    request runs its kernels at threads=1 inside its worker, randomized
//    kernels are seeded from the request, and nothing about residency or
//    scheduling leaks into the response text. Responses are emitted in
//    REQUEST ORDER, so serving output is bit-identical for any thread
//    count and any batch size (the differential suite in
//    tests/test_serve.cpp pins this against the single-table paths).
//
// Request lines ('#' comments, blank lines skipped):
//   check    <table> [f=<F>] [claimed=<D>] [seed=<S>]
//   sweep    <table> [f=<F>] [sets=<N>] [seed=<S>] [pairs=<P>] [exhaustive]
//   delivery <table> faults=<v,v,...> [pairs=<P>] [seed=<S>]
//   certify  <table> [f=<F>] [claimed=<D>] [seed=<S>]
// certify defaults its (f, claimed) to the entry's planner claims; for
// file-loaded tables (no plan) they must be given explicitly. Keys are
// validated against the kind (a silently dropped claimed= on a sweep would
// read as a verification that never ran), and sweeps are capped at 10^7
// fault sets per request so one astronomical `exhaustive` cannot stall a
// multi-tenant window. A response line is "#<index> <kind> <table> ...",
// one per request; request-level failures (unknown table, out-of-range
// fault ids, over-cap sweeps, malformed lines) yield deterministic
// "... error: <reason>" responses instead of killing the stream.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "fault/srg_engine.hpp"
#include "serve/table_registry.hpp"

namespace ftr {

enum class RequestKind : std::uint8_t { kCheck, kSweep, kDelivery, kCertify };

const char* request_kind_name(RequestKind kind);

struct ServeRequest {
  RequestKind kind = RequestKind::kCheck;
  std::string table;
  std::uint32_t faults = 1;          // f for check/sweep/certify
  bool have_faults = false;
  std::uint32_t claimed = 6;         // claimed bound for check/certify
  bool have_claimed = false;
  std::uint64_t seed = 7;
  std::uint64_t sets = 100;          // sampled sweep size
  bool exhaustive = false;           // sweep all C(n, f) sets instead
  std::size_t pairs = 0;             // delivery pairs (delivery defaults 4)
  std::vector<Node> fault_list;      // delivery's explicit fault set
  std::size_t line = 0;              // source line, 1-based (0 = synthetic)
  /// Nonempty when the source line failed to parse: the router answers it
  /// with "#<index> error: <parse_error>" instead of executing anything, so
  /// a malformed line never cuts the stream (a mid-window throw would make
  /// how many well-formed responses precede it depend on threads * batch).
  std::string parse_error;
};

/// Parses one request line. Throws ContractViolation naming `line_no` on
/// malformed input (unknown kind, bad key, non-numeric value).
ServeRequest parse_request_line(const std::string& line, std::size_t line_no);

/// Pull-based request stream, mirroring FaultSetSource: single-pass, not
/// thread-safe; the router consumes it from one thread.
class RequestSource {
 public:
  virtual ~RequestSource() = default;
  virtual bool next(ServeRequest& out) = 0;
};

/// Line-delimited text feed (the CLI's `serve --requests FILE | --stdin`).
class IstreamRequestSource final : public RequestSource {
 public:
  explicit IstreamRequestSource(std::istream& in) : in_(&in) {}
  bool next(ServeRequest& out) override;

 private:
  std::istream* in_;
  std::string line_;
  std::size_t line_no_ = 0;
};

/// Streams a materialized list (no copy; it must outlive the source).
class ExplicitRequestSource final : public RequestSource {
 public:
  explicit ExplicitRequestSource(const std::vector<ServeRequest>& requests)
      : requests_(&requests) {}
  bool next(ServeRequest& out) override;

 private:
  const std::vector<ServeRequest>* requests_;
  std::size_t pos_ = 0;
};

/// Progress snapshot handed to ServeOptions::on_progress between windows
/// (on the calling thread — never racing the workers).
struct ServeProgress {
  std::uint64_t requests_done = 0;
  double seconds = 0.0;
  TableRegistryStats registry;
  /// Work-stealing telemetry accumulated over the windows so far
  /// (scheduling-dependent — stderr probes only, never responses).
  ExecutorStats executor;
};

struct ServeOptions {
  /// How the router executes (see common/exec_policy.hpp): threads fan the
  /// request windows across workers, batch_size is requests per worker per
  /// window (clamped to 2^20 so batch * workers cannot overflow; the serve
  /// default is 64, not the policy's 1024), kernel/lanes drive every
  /// request's evaluation, progress_every schedules on_progress below.
  /// Responses never depend on any of it.
  ExecPolicy exec{.batch_size = 64};
  std::function<void(const ServeProgress&)> on_progress;
};

struct ServeSummary {
  std::uint64_t requests = 0;
  std::uint64_t checks = 0;
  std::uint64_t sweeps = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t certifies = 0;
  std::uint64_t errors = 0;  // requests answered with an error response
  /// Registry telemetry after the last window (hits/builds/evictions).
  TableRegistryStats registry;
  /// Execution telemetry (not part of the deterministic output).
  unsigned threads_used = 1;
  double seconds = 0.0;
  double requests_per_sec = 0.0;
  /// Work-stealing executor counters accumulated over all windows.
  ExecutorStats executor;
};

/// Serves `source` to exhaustion, writing one response line per request to
/// `out` in request order. The response text is a pure function of the
/// request stream and the tables' contents — bit-identical for any
/// options.threads and options.batch_size.
ServeSummary serve_requests(TableRegistry& registry, RequestSource& source,
                            std::ostream& out,
                            const ServeOptions& options = {});

/// The per-request kernel the router fans out, exposed as the differential
/// test oracle: executes one request against one table and returns the
/// response body ("<kind> <name> ..." without the "#<index> " prefix).
/// `scratch` is the caller's reusable worker slot: it is (re)built from
/// table.index lazily, and ONLY for the request kinds that evaluate
/// through a scratch (delivery) — check/sweep/certify run on their own
/// internal scratches, so a stream without deliveries never constructs
/// one. Pure function of (request, table contents) — the policy's
/// kernel/lanes shape only throughput. Throws on invalid requests (the
/// router turns that into an error response).
std::string execute_request(const ServeRequest& request,
                            const ServedTable& table,
                            std::optional<SrgScratch>& scratch,
                            const ExecPolicy& policy = {});

}  // namespace ftr
