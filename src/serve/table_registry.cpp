#include "serve/table_registry.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <sstream>
#include <utility>

#include "common/contracts.hpp"
#include "common/parse.hpp"
#include "fault/fault_gen.hpp"
#include "graph/graph_io.hpp"
#include "routing/serialization.hpp"

namespace ftr {

TableRegistry::TableRegistry(TableRegistryOptions options)
    : options_(options) {}

void TableRegistry::define(const std::string& name, TableSpec spec) {
  FTR_EXPECTS_MSG(!name.empty(), "table name must be non-empty");
  FTR_EXPECTS_MSG(!spec.graph_file.empty() || !spec.snapshot_file.empty(),
                  "table '" << name
                            << "': spec needs a graph file or a snapshot");
  FTR_EXPECTS_MSG(
      spec.snapshot_file.empty() ||
          (spec.graph_file.empty() && spec.table_file.empty()),
      "table '" << name
                << "': snapshot is exclusive with graph/routes files");
  const std::lock_guard<std::mutex> lock(mutex_);
  drop_resident_locked(name, /*count_eviction=*/false);
  auto& provider = providers_[name];  // keeps next_generation on redefine
  provider.spec = std::move(spec);
  provider.graph.reset();
  provider.table.reset();
  provider.plan = {};
  provider.prebuilt = false;
}

void TableRegistry::define_prebuilt(const std::string& name, Graph graph,
                                    RoutingTable table, Plan plan) {
  FTR_EXPECTS_MSG(!name.empty(), "table name must be non-empty");
  FTR_EXPECTS_MSG(graph.num_nodes() == table.num_nodes(),
                  "table '" << name << "': graph/table node counts differ");
  const std::lock_guard<std::mutex> lock(mutex_);
  drop_resident_locked(name, /*count_eviction=*/false);
  auto& provider = providers_[name];
  provider.spec = {};
  provider.graph = std::move(graph);
  provider.table = std::move(table);
  provider.plan = std::move(plan);
  provider.prebuilt = true;
}

bool TableRegistry::defined(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return providers_.count(name) != 0;
}

std::vector<std::string> TableRegistry::defined_names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(providers_.size());
  for (const auto& [name, provider] : providers_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

TableHandle TableRegistry::acquire(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto rit = resident_.find(name);
  if (rit != resident_.end()) {
    ++stats_.hits;
    // Touch: splice this name to the hot end without invalidating iterators.
    lru_.splice(lru_.end(), lru_, rit->second.lru_pos);
    return rit->second.handle;
  }
  const auto pit = providers_.find(name);
  FTR_EXPECTS_MSG(pit != providers_.end(), "unknown table '" << name << "'");
  ++stats_.misses;
  TableHandle handle = materialize_locked(name, pit->second);
  lru_.push_back(name);
  resident_.emplace(name, Resident{handle, std::prev(lru_.end())});
  stats_.resident_bytes += handle->memory_bytes;
  evict_over_budget_locked(name);
  return handle;
}

TableHandle TableRegistry::materialize_locked(const std::string& name,
                                              Provider& provider) {
  auto entry = std::make_shared<ServedTable>();
  entry->name = name;
  const bool from_snapshot =
      !provider.prebuilt && !provider.spec.snapshot_file.empty();
  if (provider.prebuilt) {
    entry->graph = *provider.graph;
    entry->table = *provider.table;
    entry->plan = provider.plan;
  } else if (from_snapshot) {
    // The snapshot carries the whole precomputed payload — the load (which
    // validates checksums and structure, throwing before any state escapes)
    // replaces the planner/SrgIndex work below.
    TableSnapshot snap = load_table_snapshot_file(
        provider.spec.snapshot_file, provider.spec.snapshot_mode);
    entry->graph = std::move(snap.graph);
    entry->table = std::move(snap.table);
    entry->index = std::move(snap.index);
    entry->plan = std::move(snap.plan);
    entry->route_load_ranking = std::move(snap.route_load_ranking);
  } else {
    std::ifstream gf(provider.spec.graph_file);
    FTR_EXPECTS_MSG(gf, "table '" << name << "': cannot open graph file '"
                                  << provider.spec.graph_file << "'");
    entry->graph = load_graph(gf);
    if (!provider.spec.table_file.empty()) {
      std::ifstream tf(provider.spec.table_file);
      FTR_EXPECTS_MSG(tf, "table '" << name << "': cannot open table file '"
                                    << provider.spec.table_file << "'");
      entry->table = load_routing_table(tf);
      entry->table.validate(entry->graph);
    } else {
      Rng rng(provider.spec.build_seed);
      auto planned = build_planned_routing(entry->graph, std::nullopt, rng);
      entry->table = std::move(planned.table);
      entry->plan = planned.plan;
    }
  }
  if (!from_snapshot) {
    entry->index = std::make_shared<const SrgIndex>(entry->table);
    entry->route_load_ranking = nodes_by_route_load(entry->table);
  }
  entry->memory_bytes = entry->graph.memory_bytes() +
                        entry->table.memory_bytes() +
                        entry->index->memory_bytes() +
                        entry->route_load_ranking.capacity() * sizeof(Node);
  // Everything that can throw is behind us: commit the build (or snapshot
  // load) and the generation only for entries that actually materialized.
  if (from_snapshot) {
    ++stats_.snapshot_loads;
  } else {
    ++stats_.builds;
  }
  entry->generation = provider.next_generation++;
  return entry;
}

void TableRegistry::drop_resident_locked(const std::string& name,
                                         bool count_eviction) {
  const auto rit = resident_.find(name);
  if (rit == resident_.end()) return;
  stats_.resident_bytes -= rit->second.handle->memory_bytes;
  if (count_eviction) ++stats_.evictions;
  lru_.erase(rit->second.lru_pos);
  resident_.erase(rit);
}

void TableRegistry::evict_over_budget_locked(const std::string& keep) {
  if (options_.max_resident_bytes == 0) return;
  auto it = lru_.begin();
  while (stats_.resident_bytes > options_.max_resident_bytes &&
         it != lru_.end()) {
    if (*it == keep) {  // the entry being acquired always survives
      ++it;
      continue;
    }
    const auto rit = resident_.find(*it);
    FTR_ASSERT(rit != resident_.end());
    stats_.resident_bytes -= rit->second.handle->memory_bytes;
    ++stats_.evictions;
    resident_.erase(rit);
    it = lru_.erase(it);
  }
}

bool TableRegistry::resident(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return resident_.count(name) != 0;
}

std::vector<std::string> TableRegistry::resident_lru_order() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return {lru_.begin(), lru_.end()};
}

TableRegistryStats TableRegistry::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  TableRegistryStats out = stats_;
  out.resident_tables = resident_.size();
  return out;
}

void TableRegistry::evict_all() {
  const std::lock_guard<std::mutex> lock(mutex_);
  stats_.evictions += resident_.size();
  resident_.clear();
  lru_.clear();
  stats_.resident_bytes = 0;
}

std::size_t load_table_manifest(std::istream& in, TableRegistry& registry) {
  std::string line;
  std::size_t line_no = 0;
  std::size_t defined = 0;
  while (next_data_line(in, line, line_no)) {
    std::istringstream fields(line);
    std::string word;
    FTR_ASSERT(fields >> word);  // next_data_line never yields a blank line
    FTR_EXPECTS_MSG(word == "table", "manifest line "
                                         << line_no
                                         << ": expected 'table', got '"
                                         << word << "'");
    std::string name;
    FTR_EXPECTS_MSG(fields >> name,
                    "manifest line " << line_no << ": missing table name");
    TableSpec spec;
    bool saw_seed = false;
    bool saw_load_mode = false;
    std::string token;
    while (fields >> token) {
      const auto eq = token.find('=');
      FTR_EXPECTS_MSG(eq != std::string::npos && eq > 0 &&
                          eq + 1 < token.size(),
                      "manifest line " << line_no << ": expected key=value, "
                                       << "got '" << token << "'");
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      if (key == "graph") {
        spec.graph_file = value;
      } else if (key == "routes") {
        spec.table_file = value;
      } else if (key == "seed") {
        const auto seed = parse_u64(value);
        FTR_EXPECTS_MSG(seed.has_value(), "manifest line " << line_no
                                                           << ": bad seed '"
                                                           << value << "'");
        spec.build_seed = *seed;
        saw_seed = true;
      } else if (key == "snapshot") {
        spec.snapshot_file = value;
      } else if (key == "snapshot_load") {
        const auto load_mode = parse_snapshot_load_mode(value);
        FTR_EXPECTS_MSG(load_mode.has_value(),
                        "manifest line " << line_no << ": bad snapshot_load '"
                                         << value << "' (bulk|mmap)");
        spec.snapshot_mode = *load_mode;
        saw_load_mode = true;
      } else {
        FTR_EXPECTS_MSG(false, "manifest line " << line_no
                                                << ": unknown key '" << key
                                                << "'");
      }
    }
    FTR_EXPECTS_MSG(!spec.graph_file.empty() || !spec.snapshot_file.empty(),
                    "manifest line " << line_no << ": table '" << name
                                     << "' needs graph=<file> or "
                                     << "snapshot=<file>");
    FTR_EXPECTS_MSG(spec.snapshot_file.empty() ||
                        (spec.graph_file.empty() && spec.table_file.empty() &&
                         !saw_seed),
                    "manifest line "
                        << line_no << ": table '" << name
                        << "': snapshot= is exclusive with "
                        << "graph=/routes=/seed=");
    FTR_EXPECTS_MSG(!saw_load_mode || !spec.snapshot_file.empty(),
                    "manifest line " << line_no << ": table '" << name
                                     << "': snapshot_load= needs snapshot=");
    // A duplicate name in one manifest is almost certainly a copy-paste
    // typo; silently letting the last definition win would strand every
    // request aimed at the lost spec on 'unknown table'. (Programmatic
    // redefinition via define() remains allowed.)
    FTR_EXPECTS_MSG(!registry.defined(name),
                    "manifest line " << line_no << ": duplicate table '"
                                     << name << "'");
    registry.define(name, std::move(spec));
    ++defined;
  }
  return defined;
}

}  // namespace ftr
