#include <sstream>

#include "common/contracts.hpp"
#include "gen/generators.hpp"

namespace ftr {

namespace {

std::string dim_name(const char* base, std::size_t d) {
  std::ostringstream os;
  os << base << '(' << d << ')';
  return os.str();
}

std::uint32_t rotate_left(std::uint32_t w, std::size_t dim) {
  const std::uint32_t mask = (1u << dim) - 1;
  return ((w << 1) | (w >> (dim - 1))) & mask;
}

}  // namespace

GeneratedGraph hypercube(std::size_t dim) {
  FTR_EXPECTS(dim >= 1 && dim <= 24);
  const std::size_t n = std::size_t{1} << dim;
  GraphBuilder g(n);
  for (Node w = 0; w < n; ++w) {
    for (std::size_t b = 0; b < dim; ++b) {
      const Node v = w ^ (Node{1} << b);
      if (w < v) g.add_edge(w, v);
    }
  }
  return {g.build(), dim_name("Q", dim), static_cast<std::uint32_t>(dim)};
}

GeneratedGraph cube_connected_cycles(std::size_t dim) {
  FTR_EXPECTS_MSG(dim >= 3, "CCC needs ring length >= 3 for simplicity");
  const std::size_t cube = std::size_t{1} << dim;
  GraphBuilder g(cube * dim);
  auto id = [dim](std::size_t w, std::size_t i) {
    return static_cast<Node>(w * dim + i);
  };
  for (std::size_t w = 0; w < cube; ++w) {
    for (std::size_t i = 0; i < dim; ++i) {
      g.add_edge(id(w, i), id(w, (i + 1) % dim));          // ring edge
      const std::size_t w2 = w ^ (std::size_t{1} << i);    // cube edge
      if (w < w2) g.add_edge(id(w, i), id(w2, i));
    }
  }
  return {g.build(), dim_name("CCC", dim), 3u};
}

GeneratedGraph butterfly(std::size_t dim) {
  FTR_EXPECTS(dim >= 1);
  const std::size_t cols = std::size_t{1} << dim;
  GraphBuilder g((dim + 1) * cols);
  auto id = [cols](std::size_t level, std::size_t w) {
    return static_cast<Node>(level * cols + w);
  };
  for (std::size_t level = 0; level < dim; ++level) {
    for (std::size_t w = 0; w < cols; ++w) {
      g.add_edge(id(level, w), id(level + 1, w));
      g.add_edge(id(level, w), id(level + 1, w ^ (std::size_t{1} << level)));
    }
  }
  return {g.build(), dim_name("BF", dim), 2u};
}

GeneratedGraph wrapped_butterfly(std::size_t dim) {
  FTR_EXPECTS_MSG(dim >= 3, "WBF needs >= 3 levels for simplicity");
  const std::size_t cols = std::size_t{1} << dim;
  GraphBuilder g(dim * cols);
  auto id = [cols](std::size_t level, std::size_t w) {
    return static_cast<Node>(level * cols + w);
  };
  for (std::size_t level = 0; level < dim; ++level) {
    const std::size_t next = (level + 1) % dim;
    for (std::size_t w = 0; w < cols; ++w) {
      g.add_edge(id(level, w), id(next, w));
      g.add_edge(id(level, w), id(next, w ^ (std::size_t{1} << level)));
    }
  }
  // Vertex-transitive 4-regular graphs have kappa >= 2(4+1)/3 > 3, so 4.
  return {g.build(), dim_name("WBF", dim), 4u};
}

GeneratedGraph de_bruijn(std::size_t dim) {
  FTR_EXPECTS(dim >= 2 && dim <= 24);
  const std::size_t n = std::size_t{1} << dim;
  const Node mask = static_cast<Node>(n - 1);
  GraphBuilder g(n);
  for (Node w = 0; w < n; ++w) {
    for (Node bit = 0; bit <= 1; ++bit) {
      const Node v = ((w << 1) | bit) & mask;
      if (v != w) g.add_edge(w, v);
    }
  }
  return {g.build(), dim_name("deBruijn", dim), std::nullopt};
}

GeneratedGraph shuffle_exchange(std::size_t dim) {
  FTR_EXPECTS(dim >= 2 && dim <= 24);
  const std::size_t n = std::size_t{1} << dim;
  GraphBuilder g(n);
  for (Node w = 0; w < n; ++w) {
    g.add_edge(w, w ^ 1u);  // exchange
    const Node shuffled = rotate_left(w, dim);
    if (shuffled != w) g.add_edge(w, shuffled);  // shuffle
  }
  return {g.build(), dim_name("SE", dim), std::nullopt};
}

}  // namespace ftr
