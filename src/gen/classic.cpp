#include <sstream>

#include "common/contracts.hpp"
#include "gen/generators.hpp"

namespace ftr {

namespace {

std::string fmt_name(const std::string& base, std::initializer_list<std::size_t> args) {
  std::ostringstream os;
  os << base << '(';
  bool first = true;
  for (std::size_t a : args) {
    if (!first) os << ',';
    os << a;
    first = false;
  }
  os << ')';
  return os.str();
}

}  // namespace

GeneratedGraph complete_graph(std::size_t n) {
  FTR_EXPECTS(n >= 1);
  GraphBuilder g(n);
  for (Node u = 0; u < n; ++u) {
    for (Node v = u + 1; v < n; ++v) g.add_edge(u, v);
  }
  return {g.build(), fmt_name("K", {n}),
          static_cast<std::uint32_t>(n - 1)};
}

GeneratedGraph cycle_graph(std::size_t n) {
  FTR_EXPECTS(n >= 3);
  GraphBuilder g(n);
  for (Node u = 0; u < n; ++u) g.add_edge(u, static_cast<Node>((u + 1) % n));
  return {g.build(), fmt_name("C", {n}), 2u};
}

GeneratedGraph path_graph(std::size_t n) {
  FTR_EXPECTS(n >= 2);
  GraphBuilder g(n);
  for (Node u = 0; u + 1 < n; ++u) g.add_edge(u, u + 1);
  return {g.build(), fmt_name("P", {n}), 1u};
}

GeneratedGraph star_graph(std::size_t leaves) {
  FTR_EXPECTS(leaves >= 1);
  GraphBuilder g(leaves + 1);
  for (Node v = 1; v <= leaves; ++v) g.add_edge(0, v);
  return {g.build(), fmt_name("star", {leaves}), 1u};
}

GeneratedGraph complete_bipartite(std::size_t a, std::size_t b) {
  FTR_EXPECTS(a >= 1 && b >= 1);
  GraphBuilder g(a + b);
  for (Node u = 0; u < a; ++u) {
    for (Node v = 0; v < b; ++v) g.add_edge(u, static_cast<Node>(a + v));
  }
  return {g.build(), fmt_name("K", {a, b}),
          static_cast<std::uint32_t>(std::min(a, b))};
}

GeneratedGraph grid_graph(std::size_t rows, std::size_t cols) {
  FTR_EXPECTS(rows >= 2 && cols >= 2);
  GraphBuilder g(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<Node>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return {g.build(), fmt_name("grid", {rows, cols}), 2u};
}

GeneratedGraph torus_graph(std::size_t rows, std::size_t cols) {
  FTR_EXPECTS(rows >= 3 && cols >= 3);
  GraphBuilder g(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<Node>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      g.add_edge(id(r, c), id(r, (c + 1) % cols));
      g.add_edge(id(r, c), id((r + 1) % rows, c));
    }
  }
  return {g.build(), fmt_name("torus", {rows, cols}), 4u};
}

GeneratedGraph petersen_graph() {
  // Outer 5-cycle 0..4, inner 5-cycle (pentagram) 5..9, spokes i -- i+5.
  GraphBuilder g(10);
  for (Node i = 0; i < 5; ++i) {
    g.add_edge(i, (i + 1) % 5);
    g.add_edge(5 + i, 5 + (i + 2) % 5);
    g.add_edge(i, 5 + i);
  }
  return {g.build(), "petersen", 3u};
}

GeneratedGraph generalized_petersen(std::size_t n, std::size_t k) {
  FTR_EXPECTS(n >= 3);
  FTR_EXPECTS_MSG(k >= 1 && 2 * k < n, "GP(n,k) needs 1 <= k < n/2");
  GraphBuilder g(2 * n);
  for (Node i = 0; i < n; ++i) {
    g.add_edge(i, static_cast<Node>((i + 1) % n));              // outer cycle
    g.add_edge(static_cast<Node>(n + i),
               static_cast<Node>(n + (i + k) % n));             // inner star
    g.add_edge(i, static_cast<Node>(n + i));                    // spoke
  }
  return {g.build(), fmt_name("GP", {n, k}), 3u};
}

GeneratedGraph dodecahedron() {
  auto gg = generalized_petersen(10, 2);
  gg.name = "dodecahedron";
  return gg;
}

GeneratedGraph desargues_graph() {
  auto gg = generalized_petersen(10, 3);
  gg.name = "desargues";
  return gg;
}

GeneratedGraph moebius_kantor_graph() {
  auto gg = generalized_petersen(8, 3);
  gg.name = "moebius-kantor";
  return gg;
}

GeneratedGraph nauru_graph() {
  auto gg = generalized_petersen(12, 5);
  gg.name = "nauru";
  return gg;
}

GeneratedGraph circulant_graph(std::size_t n,
                               const std::vector<std::uint32_t>& offsets) {
  FTR_EXPECTS(n >= 3);
  GraphBuilder g(n);
  for (std::uint32_t s : offsets) {
    FTR_EXPECTS_MSG(s >= 1 && s < n, "circulant offset " << s << " out of range");
    for (Node u = 0; u < n; ++u) {
      const Node v = static_cast<Node>((u + s) % n);
      if (u != v) g.add_edge(u, v);
    }
  }
  std::ostringstream os;
  os << "circulant(" << n << ";";
  for (std::size_t i = 0; i < offsets.size(); ++i) {
    if (i) os << ',';
    os << offsets[i];
  }
  os << ')';
  return {g.build(), os.str(), std::nullopt};
}

}  // namespace ftr
