#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "common/contracts.hpp"
#include "gen/generators.hpp"
#include "graph/bfs.hpp"

namespace ftr {

GeneratedGraph gnp(std::size_t n, double p, Rng& rng) {
  FTR_EXPECTS(n >= 1);
  FTR_EXPECTS(p >= 0.0 && p <= 1.0);
  GraphBuilder g(n);
  // Geometric skipping: expected O(n^2 p) work instead of O(n^2).
  if (p > 0.0) {
    const double logq = std::log1p(-p);
    if (p >= 1.0 || logq == 0.0) {
      for (Node u = 0; u < n; ++u)
        for (Node v = u + 1; v < n; ++v) g.add_edge(u, v);
    } else {
      // Iterate over the strictly-upper-triangular cells in row-major order,
      // skipping ahead geometrically.
      std::uint64_t cell = 0;  // linear index into the C(n,2) cells
      const std::uint64_t total = static_cast<std::uint64_t>(n) * (n - 1) / 2;
      auto cell_to_edge = [n](std::uint64_t c) {
        // Row-major: row u contributes (n-1-u) cells.
        Node u = 0;
        std::uint64_t remaining = c;
        std::uint64_t row_len = n - 1;
        while (remaining >= row_len) {
          remaining -= row_len;
          ++u;
          --row_len;
        }
        return std::pair<Node, Node>{u, static_cast<Node>(u + 1 + remaining)};
      };
      while (true) {
        const double r = rng.uniform();
        const auto skip =
            static_cast<std::uint64_t>(std::floor(std::log1p(-r) / logq));
        cell += skip;
        if (cell >= total) break;
        const auto [u, v] = cell_to_edge(cell);
        g.add_edge(u, v);
        ++cell;
        if (cell >= total) break;
      }
    }
  }
  std::ostringstream os;
  os << "G(" << n << "," << p << ")";
  return {g.build(), os.str(), std::nullopt};
}

GeneratedGraph gnp_connected(std::size_t n, double p, Rng& rng,
                             std::size_t max_tries) {
  for (std::size_t attempt = 0; attempt < max_tries; ++attempt) {
    GeneratedGraph gg = gnp(n, p, rng);
    if (is_connected(gg.graph)) {
      gg.name += "|connected";
      return gg;
    }
  }
  throw std::runtime_error("gnp_connected: no connected sample within budget");
}

GeneratedGraph random_regular(std::size_t n, std::size_t d, Rng& rng,
                              std::size_t max_tries) {
  FTR_EXPECTS_MSG((n * d) % 2 == 0, "n*d must be even for a d-regular graph");
  FTR_EXPECTS(d < n);
  for (std::size_t attempt = 0; attempt < max_tries; ++attempt) {
    // Pairing model: n*d stubs, matched by a random permutation; reject
    // samples containing loops or parallel edges.
    std::vector<Node> stubs(n * d);
    for (std::size_t i = 0; i < stubs.size(); ++i)
      stubs[i] = static_cast<Node>(i / d);
    const auto perm = rng.permutation(stubs.size());
    GraphBuilder g(n);
    bool ok = true;
    for (std::size_t i = 0; ok && i + 1 < stubs.size(); i += 2) {
      const Node u = stubs[perm[i]];
      const Node v = stubs[perm[i + 1]];
      if (u == v || !g.add_edge(u, v)) ok = false;
    }
    if (ok) {
      std::ostringstream os;
      os << "RR(" << n << "," << d << ")";
      return {g.build(), os.str(), std::nullopt};
    }
  }
  throw std::runtime_error("random_regular: no simple pairing within budget");
}

}  // namespace ftr
