// Graph generators for every family the paper mentions plus standard test
// fodder. Each generator returns a GeneratedGraph carrying the Graph, a
// printable name, and — where the family's connectivity is analytic — the
// known node connectivity, so experiments need not recompute kappa for big
// instances.
//
// Families named in the paper (Section 1 / Section 4): the hypercube, its
// bounded-degree realizations (cube-connected cycles, butterfly /
// "extended butterfly", shuffle-exchange per Ullman 1984), and random graphs
// G(n,p) for the bipolar construction of Section 5.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace ftr {

/// A generated graph plus metadata used by experiments.
struct GeneratedGraph {
  Graph graph;
  std::string name;
  /// Node connectivity when it is known analytically for the family;
  /// experiments fall back to node_connectivity() when absent.
  std::optional<std::uint32_t> known_connectivity;
};

// --- Classic families -----------------------------------------------------

/// K_n, kappa = n-1.
GeneratedGraph complete_graph(std::size_t n);

/// Cycle C_n (n >= 3), kappa = 2.
GeneratedGraph cycle_graph(std::size_t n);

/// Path P_n (n >= 2), kappa = 1.
GeneratedGraph path_graph(std::size_t n);

/// Star K_{1,n} (center node 0), kappa = 1.
GeneratedGraph star_graph(std::size_t leaves);

/// Complete bipartite K_{a,b}, kappa = min(a,b).
GeneratedGraph complete_bipartite(std::size_t a, std::size_t b);

/// rows x cols grid (both >= 2), kappa = 2.
GeneratedGraph grid_graph(std::size_t rows, std::size_t cols);

/// rows x cols torus (both >= 3), 4-regular, kappa = 4.
GeneratedGraph torus_graph(std::size_t rows, std::size_t cols);

/// The Petersen graph: 10 nodes, 3-regular, kappa = 3, girth 5.
GeneratedGraph petersen_graph();

/// Generalized Petersen graph GP(n, k), 1 <= k < n/2: outer n-cycle, inner
/// star polygon with step k, spokes between them. 3-regular, kappa = 3.
GeneratedGraph generalized_petersen(std::size_t n, std::size_t k);

/// The dodecahedron GP(10, 2): 20 nodes, 3-regular, girth 5, diameter 5 —
/// the smallest classic graph with the two-trees property at t = 2.
GeneratedGraph dodecahedron();

/// The Desargues graph GP(10, 3): 20 nodes, 3-regular, girth 6, diameter 5.
GeneratedGraph desargues_graph();

/// The Moebius–Kantor graph GP(8, 3): 16 nodes, 3-regular, girth 6.
GeneratedGraph moebius_kantor_graph();

/// The Nauru graph GP(12, 5): 24 nodes, 3-regular, girth 6.
GeneratedGraph nauru_graph();

/// Circulant graph C_n(offsets): node i adjacent to i +- s for each offset.
/// Connectivity is not filled in (depends on the offset structure).
GeneratedGraph circulant_graph(std::size_t n, const std::vector<std::uint32_t>& offsets);

// --- Network topologies (paper Section 1) ---------------------------------

/// Hypercube Q_d: 2^d nodes, d-regular, kappa = d. Node ids are the
/// bit-strings themselves.
GeneratedGraph hypercube(std::size_t dim);

/// Cube-connected cycles CCC(d), d >= 3: d*2^d nodes, 3-regular, kappa = 3.
/// Node (w, i) has id w*d + i: ring edges around each cube vertex plus one
/// cube edge flipping bit i.
GeneratedGraph cube_connected_cycles(std::size_t dim);

/// Unwrapped butterfly BF(d): (d+1)*2^d nodes, kappa = 2 (end levels have
/// degree 2). Node (level, w) has id level*2^d + w.
GeneratedGraph butterfly(std::size_t dim);

/// Wrapped butterfly WBF(d), d >= 3: d*2^d nodes, 4-regular; being
/// vertex-transitive it has kappa = 4 ("extended butterfly" of the paper).
GeneratedGraph wrapped_butterfly(std::size_t dim);

/// Undirected binary de Bruijn graph on 2^d nodes (self-loops dropped).
/// Connectivity left unset (ends have degree < 4).
GeneratedGraph de_bruijn(std::size_t dim);

/// Shuffle-exchange graph on 2^d nodes, degree <= 3. Connectivity unset.
GeneratedGraph shuffle_exchange(std::size_t dim);

// --- Random models (paper Section 5) ---------------------------------------

/// Erdos–Renyi G(n,p). Not guaranteed connected.
GeneratedGraph gnp(std::size_t n, double p, Rng& rng);

/// G(n,p) resampled until connected (throws after max_tries failures).
GeneratedGraph gnp_connected(std::size_t n, double p, Rng& rng,
                             std::size_t max_tries = 100);

/// Random d-regular graph via the pairing model (restarts on collisions).
/// Requires n*d even and d < n.
GeneratedGraph random_regular(std::size_t n, std::size_t d, Rng& rng,
                              std::size_t max_tries = 1000);

}  // namespace ftr
