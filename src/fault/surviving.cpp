#include "fault/surviving.hpp"

#include "common/contracts.hpp"
#include "graph/bfs.hpp"

namespace ftr {

namespace {

std::vector<char> fault_flags(std::size_t n, const std::vector<Node>& faults) {
  std::vector<char> faulty(n, 0);
  for (Node f : faults) {
    FTR_EXPECTS_MSG(f < n, "fault " << f << " out of range");
    faulty[f] = 1;
  }
  return faulty;
}

bool path_survives(PathView p, const std::vector<char>& faulty) {
  for (Node v : p) {
    if (faulty[v]) return false;
  }
  return true;
}

}  // namespace

Digraph surviving_graph(const RoutingTable& table,
                        const std::vector<Node>& faults) {
  const std::size_t n = table.num_nodes();
  const auto faulty = fault_flags(n, faults);
  Digraph r(n);
  for (Node v = 0; v < n; ++v) {
    if (faulty[v]) r.remove_node(v);
  }
  table.for_each_view([&](Node x, Node y, PathView path) {
    if (!faulty[x] && !faulty[y] && path_survives(path, faulty)) {
      r.add_arc(x, y);
    }
  });
  return r;
}

Digraph surviving_graph(const MultiRouteTable& table,
                        const std::vector<Node>& faults) {
  const std::size_t n = table.num_nodes();
  const auto faulty = fault_flags(n, faults);
  Digraph r(n);
  for (Node v = 0; v < n; ++v) {
    if (faulty[v]) r.remove_node(v);
  }
  table.for_each_pair_view(
      [&](Node x, Node y, const MultiRouteTable::RouteRange& routes) {
        if (faulty[x] || faulty[y]) return;
        for (PathView p : routes) {
          if (path_survives(p, faulty)) {
            r.add_arc(x, y);
            return;
          }
        }
      });
  return r;
}

std::uint32_t surviving_diameter(const RoutingTable& table,
                                 const std::vector<Node>& faults) {
  return diameter(surviving_graph(table, faults));
}

std::uint32_t surviving_diameter(const MultiRouteTable& table,
                                 const std::vector<Node>& faults) {
  return diameter(surviving_graph(table, faults));
}

}  // namespace ftr
