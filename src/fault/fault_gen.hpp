// Fault-set generation strategies for the verification harness:
//  * uniform random f-subsets,
//  * "targeted" sets biased toward structurally important nodes
//    (concentrator members, shell nodes, tree-routing branch points) —
//    an adversary who knows the routing attacks these first.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"
#include "routing/route_table.hpp"

namespace ftr {

/// `count` uniform random f-subsets of {0..n-1}, each sorted.
std::vector<std::vector<Node>> random_fault_sets(std::size_t n, std::size_t f,
                                                 std::size_t count, Rng& rng);

/// One fault set that prefers nodes from `preferred` (drawn without
/// replacement) and fills up from the rest of {0..n-1} if needed.
std::vector<Node> targeted_fault_set(std::size_t n,
                                     const std::vector<Node>& preferred,
                                     std::size_t f, Rng& rng);

/// Nodes ranked by how many routes of the table pass through them
/// (descending). The top of this ranking is what a topology-aware adversary
/// knocks out first.
std::vector<Node> nodes_by_route_load(const RoutingTable& table);

}  // namespace ftr
