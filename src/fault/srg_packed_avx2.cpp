// AVX2 instantiation of the packed block kernel. CMake compiles this TU
// (and only this TU) with -mavx2 when the toolchain supports it, so the
// LaneBlock word loops vectorize to 256-bit ops and the explicit
// vptest paths light up. Without the flag the lookup returns nullptr
// and select_block_fn() falls through — the cpuid gate in the selector
// (not this TU) decides whether the code may actually run.
#if defined(__AVX2__)

#include "fault/srg_packed_impl.hpp"

namespace ftr::packed {

PackedBlockFn packed_block_fn_avx2(unsigned words) {
  return block_fn_for(words);
}

}  // namespace ftr::packed

#else

#include "fault/srg_packed.hpp"

namespace ftr::packed {

PackedBlockFn packed_block_fn_avx2(unsigned /*words*/) { return nullptr; }

}  // namespace ftr::packed

#endif
