#include "fault/adversary.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/combinatorics.hpp"
#include "common/contracts.hpp"
#include "graph/bfs.hpp"

namespace ftr {

AdversaryResult exhaustive_worst_faults(std::size_t n, std::size_t f,
                                        const FaultEvaluator& eval,
                                        std::uint32_t stop_above) {
  FTR_EXPECTS(f <= n);
  AdversaryResult result;
  result.exhaustive = true;
  std::vector<Node> faults(f);
  for_each_subset(n, f, [&](const std::vector<std::size_t>& subset) {
    for (std::size_t i = 0; i < f; ++i) faults[i] = static_cast<Node>(subset[i]);
    const std::uint32_t d = eval(faults);
    ++result.evaluations;
    if (result.evaluations == 1 || d > result.worst_diameter) {
      result.worst_diameter = d;
      result.worst_faults = faults;
    }
    if (stop_above != 0 && d > stop_above) {
      result.exhaustive = false;  // aborted early
      return false;
    }
    return true;
  });
  return result;
}

AdversaryResult sampled_worst_faults(std::size_t n, std::size_t f,
                                     std::size_t samples,
                                     const FaultEvaluator& eval, Rng& rng) {
  FTR_EXPECTS(f <= n);
  AdversaryResult result;
  for (std::size_t i = 0; i < samples; ++i) {
    const auto sample = rng.sample(n, f);
    std::vector<Node> faults(sample.begin(), sample.end());
    const std::uint32_t d = eval(faults);
    ++result.evaluations;
    if (d > result.worst_diameter || result.worst_faults.empty()) {
      result.worst_diameter = std::max(result.worst_diameter, d);
      result.worst_faults = std::move(faults);
    }
  }
  return result;
}

namespace {

// One hill-climbing run from `start`; returns the local optimum.
std::pair<std::vector<Node>, std::uint32_t> climb(
    std::size_t n, const FaultEvaluator& eval, std::vector<Node> current,
    std::size_t max_steps, Rng& rng, std::uint64_t& evaluations) {
  std::uint32_t best = eval(current);
  ++evaluations;
  for (std::size_t step = 0; step < max_steps; ++step) {
    bool improved = false;
    // Try swaps in a random order; accept the first strict improvement.
    const auto slot_order = rng.permutation(current.size());
    for (std::size_t si : slot_order) {
      const Node old = current[si];
      const auto cand_order = rng.permutation(n);
      for (std::size_t cand : cand_order) {
        const Node nv = static_cast<Node>(cand);
        if (std::find(current.begin(), current.end(), nv) != current.end())
          continue;
        current[si] = nv;
        const std::uint32_t d = eval(current);
        ++evaluations;
        if (d > best) {
          best = d;
          improved = true;
          break;
        }
        current[si] = old;
        // Cap the inner scan: full n per slot is wasteful on big graphs.
        if (evaluations % 64 == 0 && cand > n / 2) break;
      }
      if (improved) break;
    }
    if (!improved) break;
    if (best == kUnreachable) break;  // cannot get worse than disconnected
  }
  return {std::move(current), best};
}

}  // namespace

AdversaryResult hillclimb_worst_faults(
    std::size_t n, std::size_t f, const FaultEvaluator& eval, Rng& rng,
    std::size_t restarts, std::size_t max_steps,
    const std::vector<std::vector<Node>>& seeds) {
  FTR_EXPECTS(f <= n);
  AdversaryResult result;
  if (f == 0) {
    result.worst_diameter = eval({});
    result.evaluations = 1;
    return result;
  }
  std::vector<std::vector<Node>> starts = seeds;
  while (starts.size() < restarts) {
    const auto sample = rng.sample(n, f);
    starts.emplace_back(sample.begin(), sample.end());
  }
  for (auto& start : starts) {
    FTR_EXPECTS(start.size() == f);
    auto [faults, d] = climb(n, eval, std::move(start), max_steps, rng,
                             result.evaluations);
    if (d > result.worst_diameter || result.worst_faults.empty()) {
      result.worst_diameter = d;
      result.worst_faults = std::move(faults);
    }
    if (result.worst_diameter == kUnreachable) break;
  }
  return result;
}

}  // namespace ftr
