#include "fault/adversary.hpp"

#include <algorithm>
#include <atomic>
#include <unordered_set>
#include <utility>

#include "common/combinatorics.hpp"
#include "common/contracts.hpp"
#include "common/parallel.hpp"
#include "graph/bfs.hpp"

namespace ftr {

namespace {

// Per-chunk partial search state. Chunks cover disjoint, ordered slices of
// the task space (subset ranks, sample indices, restart indices), so
// merging partials in chunk order with the serial tie-break rule ("first
// set reaching the max wins") reproduces a serial scan exactly.
struct SearchPartial {
  std::uint32_t d = 0;
  std::vector<Node> faults;
  std::uint64_t evaluations = 0;
  bool any = false;      // a candidate has been recorded
  bool stopped = false;  // this chunk hit its early-stop condition
};

void absorb(AdversaryResult& acc, bool& have_candidate, SearchPartial&& p) {
  acc.evaluations += p.evaluations;
  if (p.any && (!have_candidate || p.d > acc.worst_diameter)) {
    acc.worst_diameter = p.d;
    acc.worst_faults = std::move(p.faults);
    have_candidate = true;
  }
}

// Lock-free "minimum chunk that stopped": later chunks use it to skip work
// that the ordered merge would discard anyway.
void note_stop(std::atomic<std::size_t>& first_stop, std::size_t chunk) {
  std::size_t cur = first_stop.load(std::memory_order_relaxed);
  while (chunk < cur && !first_stop.compare_exchange_weak(
                            cur, chunk, std::memory_order_relaxed)) {
  }
}

// The rank-chunked exhaustive scaffolding shared by the lexicographic and
// gray ground-truth scans: chunk the rank space, run `scan(partial, begin,
// end, aborted)` per chunk (the scan sets partial.stopped when it
// early-stops), skip or mid-chunk-abort chunks past the first stopped one,
// and merge partials in rank order with the serial early-stop semantics
// (everything after the first stopped chunk is discarded, un-counted).
template <typename ChunkScan>
AdversaryResult chunked_rank_scan(std::size_t count, unsigned threads,
                                  const ChunkScan& scan) {
  const std::size_t grain = sweep_grain(count, threads);
  const std::size_t chunks = num_chunks(count, grain);
  std::vector<SearchPartial> partials(chunks);
  std::atomic<std::size_t> first_stop{chunks};

  AdversaryResult result;
  parallel_for_chunks(
      count, threads, grain,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        // A chunk past an already-stopped one will be discarded by the
        // ordered merge, so skipping — or, via `aborted`, bailing out
        // mid-scan once a LOWER chunk stops — is a pure optimization. The
        // per-rank poll matters under the work-stealing executor: workers
        // start deep in their own partitions rather than in ascending
        // chunk order, so without it a low-rank stop would be discovered
        // only after every in-flight high chunk ground to completion.
        const auto aborted = [&] {
          return chunk > first_stop.load(std::memory_order_relaxed);
        };
        if (aborted()) return;
        SearchPartial& p = partials[chunk];
        scan(p, begin, end, aborted);
        if (p.stopped) note_stop(first_stop, chunk);
      },
      &result.executor);

  result.exhaustive = true;
  bool have = false;
  for (auto& p : partials) {
    const bool stopped = p.stopped;
    absorb(result, have, std::move(p));
    if (stopped) {
      result.exhaustive = false;  // aborted early, like the serial scan
      break;
    }
  }
  return result;
}

}  // namespace

AdversaryResult exhaustive_worst_faults(std::size_t n, std::size_t f,
                                        const FaultEvaluator& eval,
                                        std::uint32_t stop_above) {
  FTR_EXPECTS(f <= n);
  AdversaryResult result;
  result.exhaustive = true;
  std::vector<Node> faults(f);
  for_each_subset(n, f, [&](const std::vector<std::size_t>& subset) {
    for (std::size_t i = 0; i < f; ++i) faults[i] = static_cast<Node>(subset[i]);
    const std::uint32_t d = eval(faults);
    ++result.evaluations;
    if (result.evaluations == 1 || d > result.worst_diameter) {
      result.worst_diameter = d;
      result.worst_faults = faults;
    }
    if (stop_above != 0 && d > stop_above) {
      result.exhaustive = false;  // aborted early
      return false;
    }
    return true;
  });
  return result;
}

AdversaryResult exhaustive_worst_faults(std::size_t n, std::size_t f,
                                        const FaultEvaluatorFactory& make_eval,
                                        const SearchExecution& exec,
                                        std::uint32_t stop_above) {
  FTR_EXPECTS(f <= n);
  const std::uint64_t total = binomial(n, f);
  FTR_EXPECTS_MSG(total != ~std::uint64_t{0},
                  "C(" << n << "," << f << ") saturated; not enumerable");
  const auto count = static_cast<std::size_t>(total);
  return chunked_rank_scan(
      count, resolve_threads(exec.threads),
      [&](SearchPartial& p, std::size_t begin, std::size_t end,
          const auto& aborted) {
        const FaultEvaluator eval = make_eval();
        SubsetEnumerator e(n, f, begin);
        std::vector<Node> faults(f);
        for (std::size_t r = begin; r < end && e.valid(); ++r, e.advance()) {
          // A lower chunk stopped: this partial is merge-dead, drop it now
          // (one relaxed load per rank, dwarfed by the evaluation).
          if (aborted()) return;
          const auto& subset = e.current();
          for (std::size_t i = 0; i < f; ++i) {
            faults[i] = static_cast<Node>(subset[i]);
          }
          const std::uint32_t d = eval(faults);
          ++p.evaluations;
          if (!p.any || d > p.d) {
            p.any = true;
            p.d = d;
            p.faults = faults;
          }
          if (stop_above != 0 && d > stop_above) {
            p.stopped = true;
            break;
          }
        }
      });
}

AdversaryResult exhaustive_worst_faults_gray(const SrgIndex& index,
                                             std::size_t f,
                                             const SearchExecution& exec,
                                             std::uint32_t stop_above) {
  const std::size_t n = index.num_nodes();
  FTR_EXPECTS(f <= n);
  const std::uint64_t total = binomial(n, f);
  FTR_EXPECTS_MSG(total != ~std::uint64_t{0},
                  "C(" << n << "," << f << ") saturated; not enumerable");
  const auto count = static_cast<std::size_t>(total);
  const bool packed = exec.kernel == SrgKernel::kAuto ||
                      exec.kernel == SrgKernel::kPacked;
  if (packed) {
    // 64 Gray-adjacent sets per bit-parallel pass. The lanes of each block
    // are consumed in rank order, so the running best, the evaluation
    // count, and the early-stop point are exactly the serial scan's; the
    // witness is unranked from the winning rank at chunk end (sorted
    // ascending, like the enumerator's current()). aborted() is polled per
    // block instead of per rank — a pure optimization either way, since the
    // ordered merge discards aborted partials.
    return chunked_rank_scan(
        count, resolve_threads(exec.threads),
        [&](SearchPartial& p, std::size_t begin, std::size_t end,
            const auto& aborted) {
          SrgScratch scratch(index);
          GraySubsetEnumerator e(n, f, begin);
          SrgScratch::Result res[64];
          std::uint64_t best_rank = begin;
          std::size_t r = begin;
          while (r < end) {
            if (aborted()) return;
            const std::size_t cnt = std::min<std::size_t>(64, end - r);
            scratch.evaluate_gray_block(e, cnt, res);
            for (std::size_t i = 0; i < cnt; ++i) {
              const std::uint32_t d = res[i].diameter;
              ++p.evaluations;
              if (!p.any || d > p.d) {
                p.any = true;
                p.d = d;
                best_rank = r + i;
              }
              if (stop_above != 0 && d > stop_above) {
                p.stopped = true;
                break;
              }
            }
            if (p.stopped) break;
            r += cnt;
            if (r < end) e.advance();
          }
          if (p.any) {
            const auto worst = gray_subset_at_rank(n, f, best_rank);
            p.faults.assign(worst.begin(), worst.end());
          }
        });
  }
  return chunked_rank_scan(
      count, resolve_threads(exec.threads),
      [&](SearchPartial& p, std::size_t begin, std::size_t end,
          const auto& aborted) {
        SrgScratch scratch(index);
        scratch.set_kernel(exec.kernel);
        GraySubsetEnumerator e(n, f, begin);
        std::vector<Node> faults(e.current().begin(), e.current().end());
        scratch.begin_incremental(faults);
        for (std::size_t r = begin; r < end; ++r) {
          // A lower chunk stopped: this partial is merge-dead, drop it now.
          if (aborted()) return;
          const std::uint32_t d = scratch.evaluate_incremental().diameter;
          ++p.evaluations;
          if (!p.any || d > p.d) {
            p.any = true;
            p.d = d;
            p.faults.assign(e.current().begin(), e.current().end());
          }
          if (stop_above != 0 && d > stop_above) {
            p.stopped = true;
            break;
          }
          if (r + 1 < end) {
            e.advance();
            const GrayTransition& t = e.last_transition();
            scratch.unstrike(static_cast<Node>(t.out));
            scratch.strike(static_cast<Node>(t.in));
          }
        }
      });
}

AdversaryResult sampled_worst_faults(std::size_t n, std::size_t f,
                                     std::size_t samples,
                                     const FaultEvaluator& eval, Rng& rng) {
  FTR_EXPECTS(f <= n);
  AdversaryResult result;
  for (std::size_t i = 0; i < samples; ++i) {
    const auto sample = rng.sample(n, f);
    std::vector<Node> faults(sample.begin(), sample.end());
    const std::uint32_t d = eval(faults);
    ++result.evaluations;
    if (d > result.worst_diameter || result.worst_faults.empty()) {
      result.worst_diameter = std::max(result.worst_diameter, d);
      result.worst_faults = std::move(faults);
    }
  }
  return result;
}

namespace {

// One hill-climbing run from `start`; returns the local optimum.
std::pair<std::vector<Node>, std::uint32_t> climb(
    std::size_t n, const FaultEvaluator& eval, std::vector<Node> current,
    std::size_t max_steps, Rng& rng, std::uint64_t& evaluations) {
  std::uint32_t best = eval(current);
  ++evaluations;
  for (std::size_t step = 0; step < max_steps; ++step) {
    bool improved = false;
    // Try swaps in a random order; accept the first strict improvement.
    const auto slot_order = rng.permutation(current.size());
    for (std::size_t si : slot_order) {
      const Node old = current[si];
      const auto cand_order = rng.permutation(n);
      for (std::size_t cand : cand_order) {
        const Node nv = static_cast<Node>(cand);
        if (std::find(current.begin(), current.end(), nv) != current.end())
          continue;
        current[si] = nv;
        const std::uint32_t d = eval(current);
        ++evaluations;
        if (d > best) {
          best = d;
          improved = true;
          break;
        }
        current[si] = old;
        // Cap the inner scan: full n per slot is wasteful on big graphs.
        if (evaluations % 64 == 0 && cand > n / 2) break;
      }
      if (improved) break;
    }
    if (!improved) break;
    if (best == kUnreachable) break;  // cannot get worse than disconnected
  }
  return {std::move(current), best};
}

}  // namespace

AdversaryResult hillclimb_worst_faults(
    std::size_t n, std::size_t f, const FaultEvaluator& eval, Rng& rng,
    std::size_t restarts, std::size_t max_steps,
    const std::vector<std::vector<Node>>& seeds) {
  FTR_EXPECTS(f <= n);
  AdversaryResult result;
  if (f == 0) {
    result.worst_diameter = eval({});
    result.evaluations = 1;
    return result;
  }
  std::vector<std::vector<Node>> starts = seeds;
  while (starts.size() < restarts) {
    const auto sample = rng.sample(n, f);
    starts.emplace_back(sample.begin(), sample.end());
  }
  for (auto& start : starts) {
    FTR_EXPECTS(start.size() == f);
    auto [faults, d] = climb(n, eval, std::move(start), max_steps, rng,
                             result.evaluations);
    if (d > result.worst_diameter || result.worst_faults.empty()) {
      result.worst_diameter = d;
      result.worst_faults = std::move(faults);
    }
    if (result.worst_diameter == kUnreachable) break;
  }
  return result;
}

AdversaryResult sampled_worst_faults(std::size_t n, std::size_t f,
                                     std::size_t samples,
                                     const FaultEvaluatorFactory& make_eval,
                                     std::uint64_t seed,
                                     const SearchExecution& exec) {
  FTR_EXPECTS(f <= n);
  const unsigned threads = resolve_threads(exec.threads);
  const std::size_t grain = sweep_grain(samples, threads);
  const std::size_t chunks = num_chunks(samples, grain);
  std::vector<SearchPartial> partials(chunks);

  AdversaryResult result;
  parallel_for_chunks(
      samples, threads, grain,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        SearchPartial& p = partials[chunk];
        const FaultEvaluator eval = make_eval();
        for (std::size_t i = begin; i < end; ++i) {
          // Sample i is a pure function of (seed, i): thread-count-proof.
          Rng rng = Rng::stream(seed, i);
          const auto sample = rng.sample(n, f);
          std::vector<Node> faults(sample.begin(), sample.end());
          const std::uint32_t d = eval(faults);
          ++p.evaluations;
          if (!p.any || d > p.d) {
            p.any = true;
            p.d = d;
            p.faults = std::move(faults);
          }
        }
      },
      &result.executor);

  bool have = false;
  for (auto& p : partials) absorb(result, have, std::move(p));
  return result;
}

AdversaryResult hillclimb_worst_faults(std::size_t n, std::size_t f,
                                       const FaultEvaluatorFactory& make_eval,
                                       std::uint64_t seed,
                                       const SearchExecution& exec,
                                       std::size_t restarts,
                                       std::size_t max_steps,
                                       const std::vector<std::vector<Node>>& seeds) {
  FTR_EXPECTS(f <= n);
  AdversaryResult result;
  if (f == 0) {
    result.worst_diameter = make_eval()({});
    result.evaluations = 1;
    return result;
  }
  const std::size_t total = std::max(seeds.size(), restarts);
  std::vector<SearchPartial> partials(total);
  std::atomic<std::size_t> first_stop{total};

  // One restart per chunk: climbs dominate the cost and balance poorly, so
  // the finest grain gives the scheduler the most room.
  parallel_for_chunks(
      total, resolve_threads(exec.threads), 1,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        (void)end;
        if (chunk > first_stop.load(std::memory_order_relaxed)) return;
        SearchPartial& p = partials[chunk];
        const FaultEvaluator eval = make_eval();
        Rng rng = Rng::stream(seed, begin);
        std::vector<Node> start;
        if (begin < seeds.size()) {
          start = seeds[begin];
        } else {
          const auto sample = rng.sample(n, f);
          start.assign(sample.begin(), sample.end());
        }
        FTR_EXPECTS(start.size() == f);
        auto [faults, d] =
            climb(n, eval, std::move(start), max_steps, rng, p.evaluations);
        p.any = true;
        p.d = d;
        p.faults = std::move(faults);
        if (d == kUnreachable) {
          p.stopped = true;
          note_stop(first_stop, chunk);
        }
      },
      &result.executor);

  bool have = false;
  for (auto& p : partials) {
    const bool stopped = p.stopped;
    absorb(result, have, std::move(p));
    // Serial scan breaks after absorbing a disconnecting restart.
    if (stopped) break;
  }
  return result;
}

}  // namespace ftr
