#include "fault/adversary.hpp"

#include <algorithm>
#include <atomic>
#include <unordered_set>
#include <utility>

#include "common/combinatorics.hpp"
#include "common/contracts.hpp"
#include "common/parallel.hpp"
#include "graph/bfs.hpp"

namespace ftr {

void merge_adversary_partials(AdvPartial& into, const AdvPartial& next) {
  // Once a slice has stopped, everything after it in task order is work the
  // serial scan never did: discard it whole, evaluations included.
  if (into.stopped) return;
  into.evaluations += next.evaluations;
  if (next.any && (!into.any || next.d > into.d)) {
    into.d = next.d;
    into.faults = next.faults;
    into.any = true;
  }
  into.stopped = next.stopped;
}

namespace {

// Lock-free "minimum chunk that stopped": later chunks use it to skip work
// that the ordered merge would discard anyway.
void note_stop(std::atomic<std::size_t>& first_stop, std::size_t chunk) {
  std::size_t cur = first_stop.load(std::memory_order_relaxed);
  while (chunk < cur && !first_stop.compare_exchange_weak(
                            cur, chunk, std::memory_order_relaxed)) {
  }
}

// The rank-chunked scaffolding shared by every slice scan: chunk the global
// window [begin, end), run `scan(partial, chunk_begin, chunk_end, aborted)`
// per chunk with GLOBAL indices (the scan sets partial.stopped when it
// early-stops), skip or mid-chunk-abort chunks past the first stopped one,
// and fold the chunk partials in rank order via merge_adversary_partials —
// the same merge the distributed coordinator applies across worker slices,
// so inner chunking and outer unit boundaries are interchangeable.
template <typename ChunkScan>
AdvPartial chunked_rank_scan(std::uint64_t begin, std::uint64_t end,
                             const ExecPolicy& policy, ExecutorStats* executor,
                             const ChunkScan& scan) {
  const unsigned threads = policy.resolved_threads();
  const auto count = static_cast<std::size_t>(end - begin);
  const std::size_t grain = sweep_grain(count, threads);
  const std::size_t chunks = num_chunks(count, grain);
  std::vector<AdvPartial> partials(chunks);
  std::atomic<std::size_t> first_stop{chunks};

  ExecutorStats stats;
  parallel_for_chunks(
      policy.executor, count, threads, grain,
      [&](std::size_t chunk, std::size_t c_begin, std::size_t c_end) {
        // A chunk past an already-stopped one will be discarded by the
        // ordered merge, so skipping — or, via `aborted`, bailing out
        // mid-scan once a LOWER chunk stops — is a pure optimization. The
        // per-rank poll matters under the work-stealing executor: workers
        // start deep in their own partitions rather than in ascending
        // chunk order, so without it a low-rank stop would be discovered
        // only after every in-flight high chunk ground to completion.
        const auto aborted = [&] {
          return chunk > first_stop.load(std::memory_order_relaxed);
        };
        if (aborted()) return;
        AdvPartial& p = partials[chunk];
        scan(p, begin + c_begin, begin + c_end, aborted);
        if (p.stopped) note_stop(first_stop, chunk);
      },
      &stats);
  if (executor != nullptr) executor->accumulate(stats);

  AdvPartial acc;
  for (const auto& p : partials) {
    merge_adversary_partials(acc, p);
    if (acc.stopped) break;
  }
  return acc;
}

// Expands a fully merged partial into the result type of the full-space
// searchers.
AdversaryResult result_from_partial(AdvPartial&& p, bool exhaustive_scan,
                                    const ExecutorStats& executor) {
  AdversaryResult result;
  result.worst_diameter = p.any ? p.d : 0;
  result.worst_faults = std::move(p.faults);
  result.evaluations = p.evaluations;
  result.exhaustive = exhaustive_scan && !p.stopped;
  result.executor = executor;
  return result;
}

std::uint64_t checked_total(std::size_t n, std::size_t f) {
  const std::uint64_t total = binomial(n, f);
  FTR_EXPECTS_MSG(total != ~std::uint64_t{0},
                  "C(" << n << "," << f << ") saturated; not enumerable");
  return total;
}

}  // namespace

AdversaryResult exhaustive_worst_faults(std::size_t n, std::size_t f,
                                        const FaultEvaluator& eval,
                                        std::uint32_t stop_above) {
  FTR_EXPECTS(f <= n);
  AdversaryResult result;
  result.exhaustive = true;
  std::vector<Node> faults(f);
  for_each_subset(n, f, [&](const std::vector<std::size_t>& subset) {
    for (std::size_t i = 0; i < f; ++i) faults[i] = static_cast<Node>(subset[i]);
    const std::uint32_t d = eval(faults);
    ++result.evaluations;
    if (result.evaluations == 1 || d > result.worst_diameter) {
      result.worst_diameter = d;
      result.worst_faults = faults;
    }
    if (stop_above != 0 && d > stop_above) {
      result.exhaustive = false;  // aborted early
      return false;
    }
    return true;
  });
  return result;
}

AdvPartial exhaustive_worst_faults_slice(std::size_t n, std::size_t f,
                                         const FaultEvaluatorFactory& make_eval,
                                         std::uint64_t begin_rank,
                                         std::uint64_t end_rank,
                                         const SearchExecution& exec,
                                         std::uint32_t stop_above,
                                         ExecutorStats* executor) {
  FTR_EXPECTS(f <= n);
  const std::uint64_t total = checked_total(n, f);
  FTR_EXPECTS(begin_rank <= end_rank && end_rank <= total);
  return chunked_rank_scan(
      begin_rank, end_rank, exec.exec, executor,
      [&](AdvPartial& p, std::uint64_t begin, std::uint64_t end,
          const auto& aborted) {
        const FaultEvaluator eval = make_eval();
        SubsetEnumerator e(n, f, static_cast<std::size_t>(begin));
        std::vector<Node> faults(f);
        for (std::uint64_t r = begin; r < end && e.valid(); ++r, e.advance()) {
          // A lower chunk stopped: this partial is merge-dead, drop it now
          // (one relaxed load per rank, dwarfed by the evaluation).
          if (aborted()) return;
          const auto& subset = e.current();
          for (std::size_t i = 0; i < f; ++i) {
            faults[i] = static_cast<Node>(subset[i]);
          }
          const std::uint32_t d = eval(faults);
          ++p.evaluations;
          if (!p.any || d > p.d) {
            p.any = true;
            p.d = d;
            p.faults = faults;
          }
          if (stop_above != 0 && d > stop_above) {
            p.stopped = true;
            break;
          }
        }
      });
}

AdversaryResult exhaustive_worst_faults(std::size_t n, std::size_t f,
                                        const FaultEvaluatorFactory& make_eval,
                                        const SearchExecution& exec,
                                        std::uint32_t stop_above) {
  FTR_EXPECTS(f <= n);
  const std::uint64_t total = checked_total(n, f);
  ExecutorStats executor;
  AdvPartial p = exhaustive_worst_faults_slice(n, f, make_eval, 0, total, exec,
                                               stop_above, &executor);
  return result_from_partial(std::move(p), /*exhaustive_scan=*/true, executor);
}

AdvPartial exhaustive_worst_faults_gray_slice(const SrgIndex& index,
                                              std::size_t f,
                                              std::uint64_t begin_rank,
                                              std::uint64_t end_rank,
                                              const SearchExecution& exec,
                                              std::uint32_t stop_above,
                                              ExecutorStats* executor) {
  const std::size_t n = index.num_nodes();
  FTR_EXPECTS(f <= n);
  const std::uint64_t total = checked_total(n, f);
  FTR_EXPECTS(begin_rank <= end_rank && end_rank <= total);
  const bool packed =
      exec.exec.resolved_kernel(/*gray_adjacent=*/true) == SrgKernel::kPacked;
  if (packed) {
    // Up to lane_width() Gray-adjacent sets per bit-parallel pass. The
    // lanes of each block are consumed in rank order, so the running best,
    // the evaluation count, and the early-stop point are exactly the serial
    // scan's — whatever the block width; the witness is unranked from the
    // winning rank at chunk end (sorted ascending, like the enumerator's
    // current()). aborted() is polled per block instead of per rank — a
    // pure optimization either way, since the ordered merge discards
    // aborted partials.
    return chunked_rank_scan(
        begin_rank, end_rank, exec.exec, executor,
        [&](AdvPartial& p, std::uint64_t begin, std::uint64_t end,
            const auto& aborted) {
          SrgScratch scratch(index);
          scratch.set_lane_width(exec.exec.lanes);
          const std::uint64_t lanes = scratch.lane_width();
          GraySubsetEnumerator e(n, f, begin);
          SrgScratch::Result res[512];
          std::uint64_t best_rank = begin;
          std::uint64_t r = begin;
          while (r < end) {
            if (aborted()) return;
            const auto cnt = static_cast<std::size_t>(
                std::min<std::uint64_t>(lanes, end - r));
            scratch.evaluate_gray_block(e, cnt, res);
            for (std::size_t i = 0; i < cnt; ++i) {
              const std::uint32_t d = res[i].diameter;
              ++p.evaluations;
              if (!p.any || d > p.d) {
                p.any = true;
                p.d = d;
                best_rank = r + i;
              }
              if (stop_above != 0 && d > stop_above) {
                p.stopped = true;
                break;
              }
            }
            if (p.stopped) break;
            r += cnt;
            if (r < end) e.advance();
          }
          if (p.any) {
            const auto worst = gray_subset_at_rank(n, f, best_rank);
            p.faults.assign(worst.begin(), worst.end());
          }
        });
  }
  return chunked_rank_scan(
      begin_rank, end_rank, exec.exec, executor,
      [&](AdvPartial& p, std::uint64_t begin, std::uint64_t end,
          const auto& aborted) {
        SrgScratch scratch(index);
        scratch.set_kernel(exec.exec.kernel);
        GraySubsetEnumerator e(n, f, begin);
        std::vector<Node> faults(e.current().begin(), e.current().end());
        scratch.begin_incremental(faults);
        for (std::uint64_t r = begin; r < end; ++r) {
          // A lower chunk stopped: this partial is merge-dead, drop it now.
          if (aborted()) return;
          const std::uint32_t d = scratch.evaluate_incremental().diameter;
          ++p.evaluations;
          if (!p.any || d > p.d) {
            p.any = true;
            p.d = d;
            p.faults.assign(e.current().begin(), e.current().end());
          }
          if (stop_above != 0 && d > stop_above) {
            p.stopped = true;
            break;
          }
          if (r + 1 < end) {
            e.advance();
            const GrayTransition& t = e.last_transition();
            scratch.unstrike(static_cast<Node>(t.out));
            scratch.strike(static_cast<Node>(t.in));
          }
        }
      });
}

AdversaryResult exhaustive_worst_faults_gray(const SrgIndex& index,
                                             std::size_t f,
                                             const SearchExecution& exec,
                                             std::uint32_t stop_above) {
  const std::uint64_t total = checked_total(index.num_nodes(), f);
  ExecutorStats executor;
  AdvPartial p = exhaustive_worst_faults_gray_slice(index, f, 0, total, exec,
                                                    stop_above, &executor);
  return result_from_partial(std::move(p), /*exhaustive_scan=*/true, executor);
}

AdversaryResult sampled_worst_faults(std::size_t n, std::size_t f,
                                     std::size_t samples,
                                     const FaultEvaluator& eval, Rng& rng) {
  FTR_EXPECTS(f <= n);
  AdversaryResult result;
  for (std::size_t i = 0; i < samples; ++i) {
    const auto sample = rng.sample(n, f);
    std::vector<Node> faults(sample.begin(), sample.end());
    const std::uint32_t d = eval(faults);
    ++result.evaluations;
    if (d > result.worst_diameter || result.worst_faults.empty()) {
      result.worst_diameter = std::max(result.worst_diameter, d);
      result.worst_faults = std::move(faults);
    }
  }
  return result;
}

namespace {

// One hill-climbing run from `start`; returns the local optimum.
std::pair<std::vector<Node>, std::uint32_t> climb(
    std::size_t n, const FaultEvaluator& eval, std::vector<Node> current,
    std::size_t max_steps, Rng& rng, std::uint64_t& evaluations) {
  std::uint32_t best = eval(current);
  ++evaluations;
  for (std::size_t step = 0; step < max_steps; ++step) {
    bool improved = false;
    // Try swaps in a random order; accept the first strict improvement.
    const auto slot_order = rng.permutation(current.size());
    for (std::size_t si : slot_order) {
      const Node old = current[si];
      const auto cand_order = rng.permutation(n);
      for (std::size_t cand : cand_order) {
        const Node nv = static_cast<Node>(cand);
        if (std::find(current.begin(), current.end(), nv) != current.end())
          continue;
        current[si] = nv;
        const std::uint32_t d = eval(current);
        ++evaluations;
        if (d > best) {
          best = d;
          improved = true;
          break;
        }
        current[si] = old;
        // Cap the inner scan: full n per slot is wasteful on big graphs.
        if (evaluations % 64 == 0 && cand > n / 2) break;
      }
      if (improved) break;
    }
    if (!improved) break;
    if (best == kUnreachable) break;  // cannot get worse than disconnected
  }
  return {std::move(current), best};
}

}  // namespace

AdversaryResult hillclimb_worst_faults(
    std::size_t n, std::size_t f, const FaultEvaluator& eval, Rng& rng,
    std::size_t restarts, std::size_t max_steps,
    const std::vector<std::vector<Node>>& seeds) {
  FTR_EXPECTS(f <= n);
  AdversaryResult result;
  if (f == 0) {
    result.worst_diameter = eval({});
    result.evaluations = 1;
    return result;
  }
  std::vector<std::vector<Node>> starts = seeds;
  while (starts.size() < restarts) {
    const auto sample = rng.sample(n, f);
    starts.emplace_back(sample.begin(), sample.end());
  }
  for (auto& start : starts) {
    FTR_EXPECTS(start.size() == f);
    auto [faults, d] = climb(n, eval, std::move(start), max_steps, rng,
                             result.evaluations);
    if (d > result.worst_diameter || result.worst_faults.empty()) {
      result.worst_diameter = d;
      result.worst_faults = std::move(faults);
    }
    if (result.worst_diameter == kUnreachable) break;
  }
  return result;
}

AdvPartial sampled_worst_faults_slice(std::size_t n, std::size_t f,
                                      std::uint64_t begin_index,
                                      std::uint64_t end_index,
                                      const FaultEvaluatorFactory& make_eval,
                                      std::uint64_t seed,
                                      const SearchExecution& exec,
                                      ExecutorStats* executor) {
  FTR_EXPECTS(f <= n);
  FTR_EXPECTS(begin_index <= end_index);
  return chunked_rank_scan(
      begin_index, end_index, exec.exec, executor,
      [&](AdvPartial& p, std::uint64_t begin, std::uint64_t end,
          const auto& aborted) {
        (void)aborted;  // sampling never early-stops
        const FaultEvaluator eval = make_eval();
        for (std::uint64_t i = begin; i < end; ++i) {
          // Sample i is a pure function of (seed, i): thread-count-proof
          // AND partition-proof.
          Rng rng = Rng::stream(seed, i);
          const auto sample = rng.sample(n, f);
          std::vector<Node> faults(sample.begin(), sample.end());
          const std::uint32_t d = eval(faults);
          ++p.evaluations;
          if (!p.any || d > p.d) {
            p.any = true;
            p.d = d;
            p.faults = std::move(faults);
          }
        }
      });
}

AdversaryResult sampled_worst_faults(std::size_t n, std::size_t f,
                                     std::size_t samples,
                                     const FaultEvaluatorFactory& make_eval,
                                     std::uint64_t seed,
                                     const SearchExecution& exec) {
  ExecutorStats executor;
  AdvPartial p = sampled_worst_faults_slice(n, f, 0, samples, make_eval, seed,
                                            exec, &executor);
  return result_from_partial(std::move(p), /*exhaustive_scan=*/false,
                             executor);
}

AdvPartial hillclimb_worst_faults_slice(
    std::size_t n, std::size_t f, const FaultEvaluatorFactory& make_eval,
    std::uint64_t seed, const SearchExecution& exec,
    std::uint64_t begin_restart, std::uint64_t end_restart,
    std::size_t max_steps, const std::vector<std::vector<Node>>& seeds,
    ExecutorStats* executor) {
  FTR_EXPECTS(f <= n && f > 0);
  FTR_EXPECTS(begin_restart <= end_restart);
  const auto count = static_cast<std::size_t>(end_restart - begin_restart);
  std::vector<AdvPartial> partials(count);
  std::atomic<std::size_t> first_stop{count};

  ExecutorStats stats;
  // One restart per chunk: climbs dominate the cost and balance poorly, so
  // the finest grain gives the scheduler the most room.
  parallel_for_chunks(
      exec.exec.executor, count, exec.exec.resolved_threads(), 1,
      [&](std::size_t chunk, std::size_t c_begin, std::size_t c_end) {
        (void)c_end;
        if (chunk > first_stop.load(std::memory_order_relaxed)) return;
        AdvPartial& p = partials[chunk];
        const FaultEvaluator eval = make_eval();
        const std::uint64_t restart = begin_restart + c_begin;
        Rng rng = Rng::stream(seed, restart);
        std::vector<Node> start;
        if (restart < seeds.size()) {
          start = seeds[static_cast<std::size_t>(restart)];
        } else {
          const auto sample = rng.sample(n, f);
          start.assign(sample.begin(), sample.end());
        }
        FTR_EXPECTS(start.size() == f);
        auto [faults, d] =
            climb(n, eval, std::move(start), max_steps, rng, p.evaluations);
        p.any = true;
        p.d = d;
        p.faults = std::move(faults);
        if (d == kUnreachable) {
          p.stopped = true;
          note_stop(first_stop, chunk);
        }
      },
      &stats);
  if (executor != nullptr) executor->accumulate(stats);

  AdvPartial acc;
  for (const auto& p : partials) {
    merge_adversary_partials(acc, p);
    // Serial scan breaks after absorbing a disconnecting restart.
    if (acc.stopped) break;
  }
  return acc;
}

AdversaryResult hillclimb_worst_faults(std::size_t n, std::size_t f,
                                       const FaultEvaluatorFactory& make_eval,
                                       std::uint64_t seed,
                                       const SearchExecution& exec,
                                       std::size_t restarts,
                                       std::size_t max_steps,
                                       const std::vector<std::vector<Node>>& seeds) {
  FTR_EXPECTS(f <= n);
  if (f == 0) {
    AdversaryResult result;
    result.worst_diameter = make_eval()({});
    result.evaluations = 1;
    return result;
  }
  const std::size_t total = std::max(seeds.size(), restarts);
  ExecutorStats executor;
  AdvPartial p = hillclimb_worst_faults_slice(n, f, make_eval, seed, exec, 0,
                                              total, max_steps, seeds,
                                              &executor);
  return result_from_partial(std::move(p), /*exhaustive_scan=*/false,
                             executor);
}

}  // namespace ftr
