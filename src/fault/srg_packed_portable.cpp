// Portable instantiation of the packed block kernel (baseline build
// flags; the word loops auto-vectorize to whatever the global -m flags
// allow). Always available — select_block_fn()'s fallback. This TU also
// hosts the runtime selector, since it is the one ISA TU that is safe
// to call unconditionally.
#include "fault/srg_packed_impl.hpp"

#include "common/cpu_features.hpp"

namespace ftr::packed {

PackedBlockFn packed_block_fn_portable(unsigned words) {
  return block_fn_for(words);
}

PackedBlockFn select_block_fn(unsigned words) {
  const CpuFeatures& cpu = cpu_features();
  if (cpu.avx512f) {
    if (PackedBlockFn fn = packed_block_fn_avx512(words)) return fn;
  }
  if (cpu.avx2) {
    if (PackedBlockFn fn = packed_block_fn_avx2(words)) return fn;
  }
  return packed_block_fn_portable(words);
}

}  // namespace ftr::packed
