// AVX-512F instantiation of the packed block kernel, compiled with
// -mavx512f when the toolchain has it. See srg_packed_avx2.cpp for the
// flag/cpuid division of labor.
#if defined(__AVX512F__)

#include "fault/srg_packed_impl.hpp"

namespace ftr::packed {

PackedBlockFn packed_block_fn_avx512(unsigned words) {
  return block_fn_for(words);
}

}  // namespace ftr::packed

#else

#include "fault/srg_packed.hpp"

namespace ftr::packed {

PackedBlockFn packed_block_fn_avx512(unsigned /*words*/) { return nullptr; }

}  // namespace ftr::packed

#endif
