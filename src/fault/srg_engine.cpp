#include "fault/srg_engine.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "graph/bfs.hpp"

namespace ftr {

SrgIndex::SrgIndex(const RoutingTable& table) : n_(table.num_nodes()) {
  route_nodes_.reserve(table.arena_size());
  route_off_.reserve(table.num_routes() + 1);
  route_off_.push_back(0);
  // Every entry of a single-route table is its own ordered pair.
  table.for_each_view([this](Node x, Node y, PathView path) {
    route_src_.push_back(x);
    route_dst_.push_back(y);
    route_pair_.push_back(static_cast<std::uint32_t>(num_pairs_++));
    pair_src_.push_back(x);
    pair_dst_.push_back(y);
    route_nodes_.insert(route_nodes_.end(), path.begin(), path.end());
    route_off_.push_back(static_cast<std::uint32_t>(route_nodes_.size()));
  });
  finalize_routes();
}

SrgIndex::SrgIndex(const MultiRouteTable& table) : n_(table.num_nodes()) {
  route_nodes_.reserve(table.arena_size());
  route_off_.reserve(table.total_routes() + 1);
  route_off_.push_back(0);
  table.for_each_pair_view([this](Node x, Node y,
                                  const MultiRouteTable::RouteRange& routes) {
    const auto pair_id = static_cast<std::uint32_t>(num_pairs_++);
    pair_src_.push_back(x);
    pair_dst_.push_back(y);
    for (PathView path : routes) {
      route_src_.push_back(x);
      route_dst_.push_back(y);
      route_pair_.push_back(pair_id);
      route_nodes_.insert(route_nodes_.end(), path.begin(), path.end());
      route_off_.push_back(static_cast<std::uint32_t>(route_nodes_.size()));
    }
  });
  finalize_routes();
}

void SrgIndex::finalize_routes() {
  const std::size_t num_routes = route_src_.size();
  pair_route_count_.assign(num_pairs_, 0);
  for (std::uint32_t pid : route_pair_) ++pair_route_count_[pid];
  // Inverted index: node -> ids of routes whose path contains it (endpoints
  // included, so an endpoint fault kills the route like any interior fault).
  node_route_off_.assign(n_ + 1, 0);
  for (Node v : route_nodes_) ++node_route_off_[v + 1];
  for (std::size_t i = 1; i <= n_; ++i) {
    node_route_off_[i] += node_route_off_[i - 1];
  }
  node_route_ids_.resize(route_nodes_.size());
  std::vector<std::uint32_t> cursor(node_route_off_.begin(),
                                    node_route_off_.end() - 1);
  for (std::uint32_t r = 0; r < num_routes; ++r) {
    for (std::uint32_t i = route_off_[r]; i < route_off_[r + 1]; ++i) {
      node_route_ids_[cursor[route_nodes_[i]]++] = r;
    }
  }
}

std::size_t SrgIndex::memory_bytes() const {
  return route_nodes_.capacity() * sizeof(Node) +
         route_off_.capacity() * sizeof(std::uint32_t) +
         route_src_.capacity() * sizeof(Node) +
         route_dst_.capacity() * sizeof(Node) +
         route_pair_.capacity() * sizeof(std::uint32_t) +
         pair_src_.capacity() * sizeof(Node) +
         pair_dst_.capacity() * sizeof(Node) +
         pair_route_count_.capacity() * sizeof(std::uint32_t) +
         node_route_off_.capacity() * sizeof(std::uint32_t) +
         node_route_ids_.capacity() * sizeof(std::uint32_t);
}

SrgScratch::SrgScratch(const SrgIndex& index) : index_(&index) {
  const std::size_t n = index.n_;
  fault_stamp_.assign(n, 0);
  route_stamp_.assign(index.route_src_.size(), 0);
  pair_stamp_.assign(index.num_pairs_, 0);
  arc_off_.assign(n + 1, 0);
  arc_cursor_.assign(n, 0);
  seen_stamp_.assign(n, 0);
  dist_.assign(n, 0);
  queue_.reserve(n);
  arcs_.reserve(index.num_pairs_);
}

void SrgScratch::reset() {
  std::fill(fault_stamp_.begin(), fault_stamp_.end(), 0);
  std::fill(route_stamp_.begin(), route_stamp_.end(), 0);
  std::fill(pair_stamp_.begin(), pair_stamp_.end(), 0);
  std::fill(seen_stamp_.begin(), seen_stamp_.end(), 0);
  epoch_ = 0;
  bfs_epoch_ = 0;
  inc_active_ = false;
}

void SrgScratch::set_epochs_for_testing(std::uint32_t epoch) {
  reset();
  epoch_ = epoch;
  bfs_epoch_ = epoch;
}

std::uint32_t SrgScratch::strike(std::span<const Node> faults) {
  const SrgIndex& ix = *index_;
  ++epoch_;
  if (epoch_ == 0) {
    // Stamp wrap, once per 2^32 strikes: a stale stamp from the previous
    // counter era could otherwise collide with a fresh epoch value. Re-zero
    // every strike-side stamp and restart the counter above the zeroes.
    std::fill(fault_stamp_.begin(), fault_stamp_.end(), 0);
    std::fill(route_stamp_.begin(), route_stamp_.end(), 0);
    std::fill(pair_stamp_.begin(), pair_stamp_.end(), 0);
    epoch_ = 1;
  }
  auto survivors = static_cast<std::uint32_t>(ix.n_);
  for (Node f : faults) {
    FTR_EXPECTS_MSG(f < ix.n_, "fault " << f << " out of range");
    if (fault_stamp_[f] == epoch_) continue;  // duplicate fault id
    fault_stamp_[f] = epoch_;
    --survivors;
    for (std::uint32_t i = ix.node_route_off_[f]; i < ix.node_route_off_[f + 1];
         ++i) {
      route_stamp_[ix.node_route_ids_[i]] = epoch_;
    }
  }

  // Collect surviving arcs, one per ordered pair with a live route.
  arcs_.clear();
  const std::size_t num_routes = ix.route_src_.size();
  for (std::uint32_t r = 0; r < num_routes; ++r) {
    if (route_stamp_[r] == epoch_) continue;
    const std::uint32_t pid = ix.route_pair_[r];
    if (pair_stamp_[pid] == epoch_) continue;
    pair_stamp_[pid] = epoch_;
    arcs_.emplace_back(ix.route_src_[r], ix.route_dst_[r]);
  }

  // Counting sort by source into the scratch CSR.
  std::fill(arc_off_.begin(), arc_off_.end(), 0);
  for (const auto& [src, dst] : arcs_) ++arc_off_[src + 1];
  for (std::size_t i = 1; i <= ix.n_; ++i) arc_off_[i] += arc_off_[i - 1];
  arc_tgt_.resize(arcs_.size());
  std::copy(arc_off_.begin(), arc_off_.end() - 1, arc_cursor_.begin());
  for (const auto& [src, dst] : arcs_) arc_tgt_[arc_cursor_[src]++] = dst;
  return survivors;
}

std::uint32_t SrgScratch::bfs_from(Node s, std::uint32_t* reached_out) {
  ++bfs_epoch_;
  if (bfs_epoch_ == 0) {  // same wraparound discipline as strike()
    std::fill(seen_stamp_.begin(), seen_stamp_.end(), 0);
    bfs_epoch_ = 1;
  }
  queue_.clear();
  queue_.push_back(s);
  seen_stamp_[s] = bfs_epoch_;
  dist_[s] = 0;
  std::uint32_t reached = 1;
  std::uint32_t ecc = 0;
  for (std::size_t qi = 0; qi < queue_.size(); ++qi) {
    const Node u = queue_[qi];
    const std::uint32_t du = dist_[u];
    for (std::uint32_t i = arc_off_[u]; i < arc_off_[u + 1]; ++i) {
      const Node v = arc_tgt_[i];
      if (seen_stamp_[v] == bfs_epoch_) continue;
      seen_stamp_[v] = bfs_epoch_;
      dist_[v] = du + 1;
      ecc = du + 1;
      ++reached;
      queue_.push_back(v);
    }
  }
  if (reached_out != nullptr) *reached_out = reached;
  return ecc;
}

SrgScratch::Result SrgScratch::evaluate(std::span<const Node> faults) {
  const std::uint32_t survivors = strike(faults);
  Result res;
  res.survivors = survivors;
  res.arcs = static_cast<std::uint32_t>(arcs_.size());
  if (survivors <= 1) return res;  // diameter 0 by convention
  std::uint32_t diam = 0;
  for (Node s = 0; s < index_->n_; ++s) {
    if (fault_stamp_[s] == epoch_) continue;
    std::uint32_t reached = 0;
    const std::uint32_t ecc = bfs_from(s, &reached);
    if (reached < survivors) {
      res.diameter = kUnreachable;
      return res;
    }
    diam = std::max(diam, ecc);
  }
  res.diameter = diam;
  return res;
}

SrgScratch::Result SrgScratch::apply(std::span<const Node> faults) {
  Result res;
  res.survivors = strike(faults);
  res.arcs = static_cast<std::uint32_t>(arcs_.size());
  return res;
}

std::uint32_t SrgScratch::surviving_diameter(std::span<const Node> faults) {
  return evaluate(faults).diameter;
}

// --- incremental (Gray) mode -------------------------------------------------

void SrgScratch::begin_incremental(std::span<const Node> faults) {
  const SrgIndex& ix = *index_;
  inc_active_ = true;
  inc_fault_.assign(ix.n_, 0);
  inc_route_kill_.assign(ix.route_src_.size(), 0);
  inc_pair_live_ = ix.pair_route_count_;
  inc_slot_.resize(ix.num_pairs_);
  inc_adj_.resize(ix.n_);
  for (auto& list : inc_adj_) list.clear();
  for (std::uint32_t pid = 0; pid < ix.num_pairs_; ++pid) {
    auto& list = inc_adj_[ix.pair_src_[pid]];
    inc_slot_[pid] = static_cast<std::uint32_t>(list.size());
    list.push_back({ix.pair_dst_[pid], pid});
  }
  inc_survivors_ = static_cast<std::uint32_t>(ix.n_);
  inc_arcs_ = static_cast<std::uint32_t>(ix.num_pairs_);
  for (Node f : faults) strike(f);
}

void SrgScratch::inc_add_arc(std::uint32_t pair) {
  auto& list = inc_adj_[index_->pair_src_[pair]];
  inc_slot_[pair] = static_cast<std::uint32_t>(list.size());
  list.push_back({index_->pair_dst_[pair], pair});
  ++inc_arcs_;
}

void SrgScratch::inc_remove_arc(std::uint32_t pair) {
  auto& list = inc_adj_[index_->pair_src_[pair]];
  const std::uint32_t slot = inc_slot_[pair];
  list[slot] = list.back();
  inc_slot_[list[slot].pair] = slot;
  list.pop_back();
  --inc_arcs_;
}

void SrgScratch::strike(Node v) {
  const SrgIndex& ix = *index_;
  FTR_EXPECTS_MSG(inc_active_, "begin_incremental() first");
  FTR_EXPECTS_MSG(v < ix.n_, "fault " << v << " out of range");
  FTR_EXPECTS_MSG(!inc_fault_[v], "node " << v << " already faulty");
  inc_fault_[v] = 1;
  --inc_survivors_;
  for (std::uint32_t i = ix.node_route_off_[v]; i < ix.node_route_off_[v + 1];
       ++i) {
    const std::uint32_t r = ix.node_route_ids_[i];
    if (inc_route_kill_[r]++ != 0) continue;  // already dead via another fault
    const std::uint32_t pid = ix.route_pair_[r];
    if (--inc_pair_live_[pid] == 0) inc_remove_arc(pid);
  }
}

void SrgScratch::unstrike(Node v) {
  const SrgIndex& ix = *index_;
  FTR_EXPECTS_MSG(inc_active_, "begin_incremental() first");
  FTR_EXPECTS_MSG(v < ix.n_, "fault " << v << " out of range");
  FTR_EXPECTS_MSG(inc_fault_[v], "node " << v << " is not faulty");
  inc_fault_[v] = 0;
  ++inc_survivors_;
  for (std::uint32_t i = ix.node_route_off_[v]; i < ix.node_route_off_[v + 1];
       ++i) {
    const std::uint32_t r = ix.node_route_ids_[i];
    if (--inc_route_kill_[r] != 0) continue;  // still dead via another fault
    const std::uint32_t pid = ix.route_pair_[r];
    if (inc_pair_live_[pid]++ == 0) inc_add_arc(pid);
  }
}

std::uint32_t SrgScratch::bfs_from_inc(Node s, std::uint32_t* reached_out) {
  ++bfs_epoch_;
  if (bfs_epoch_ == 0) {  // same wraparound discipline as bfs_from()
    std::fill(seen_stamp_.begin(), seen_stamp_.end(), 0);
    bfs_epoch_ = 1;
  }
  queue_.clear();
  queue_.push_back(s);
  seen_stamp_[s] = bfs_epoch_;
  dist_[s] = 0;
  std::uint32_t reached = 1;
  std::uint32_t ecc = 0;
  for (std::size_t qi = 0; qi < queue_.size(); ++qi) {
    const Node u = queue_[qi];
    const std::uint32_t du = dist_[u];
    for (const IncArc& arc : inc_adj_[u]) {
      const Node v = arc.dst;
      if (seen_stamp_[v] == bfs_epoch_) continue;
      seen_stamp_[v] = bfs_epoch_;
      dist_[v] = du + 1;
      ecc = du + 1;
      ++reached;
      queue_.push_back(v);
    }
  }
  if (reached_out != nullptr) *reached_out = reached;
  return ecc;
}

SrgScratch::Result SrgScratch::evaluate_incremental() {
  FTR_EXPECTS_MSG(inc_active_, "begin_incremental() first");
  Result res;
  res.survivors = inc_survivors_;
  res.arcs = inc_arcs_;
  if (inc_survivors_ <= 1) return res;  // diameter 0 by convention
  std::uint32_t diam = 0;
  for (Node s = 0; s < index_->n_; ++s) {
    if (inc_fault_[s]) continue;
    std::uint32_t reached = 0;
    const std::uint32_t ecc = bfs_from_inc(s, &reached);
    if (reached < inc_survivors_) {
      res.diameter = kUnreachable;
      return res;
    }
    diam = std::max(diam, ecc);
  }
  res.diameter = diam;
  return res;
}

Digraph SrgScratch::incremental_surviving_graph() const {
  FTR_EXPECTS_MSG(inc_active_, "begin_incremental() first");
  const SrgIndex& ix = *index_;
  Digraph r(ix.n_);
  for (Node v = 0; v < ix.n_; ++v) {
    if (inc_fault_[v]) r.remove_node(v);
  }
  // Arcs in route-id order, one per pair at its FIRST live route — the
  // exact insertion order strike()+last_surviving_graph() produces, so
  // order-sensitive consumers see identical digraphs on both paths.
  inc_emitted_.assign(ix.num_pairs_, 0);  // member buffer: no per-set alloc
  const std::size_t num_routes = ix.route_src_.size();
  for (std::uint32_t rt = 0; rt < num_routes; ++rt) {
    if (inc_route_kill_[rt] != 0) continue;
    const std::uint32_t pid = ix.route_pair_[rt];
    if (inc_emitted_[pid]) continue;
    inc_emitted_[pid] = 1;
    r.add_arc(ix.route_src_[rt], ix.route_dst_[rt]);
  }
  return r;
}

std::uint32_t SrgScratch::componentwise_diameter(
    std::span<const Node> faults, std::span<const std::uint32_t> comp) {
  FTR_EXPECTS(comp.size() == index_->n_);
  const std::uint32_t survivors = strike(faults);
  if (survivors <= 1) return 0;
  std::uint32_t worst = 0;
  for (Node s = 0; s < index_->n_; ++s) {
    if (fault_stamp_[s] == epoch_) continue;
    bfs_from(s, nullptr);
    for (Node t = 0; t < index_->n_; ++t) {
      if (t == s || fault_stamp_[t] == epoch_ || comp[t] != comp[s]) continue;
      if (seen_stamp_[t] != bfs_epoch_) return kUnreachable;
      worst = std::max(worst, dist_[t]);
    }
  }
  return worst;
}

Digraph SrgScratch::surviving_graph(std::span<const Node> faults) {
  strike(faults);
  return last_surviving_graph();
}

Digraph SrgScratch::last_surviving_graph() const {
  FTR_EXPECTS_MSG(epoch_ != 0, "no fault set has been struck yet");
  Digraph r(index_->n_);
  for (Node v = 0; v < index_->n_; ++v) {
    if (fault_stamp_[v] == epoch_) r.remove_node(v);
  }
  for (const auto& [src, dst] : arcs_) r.add_arc(src, dst);
  return r;
}

}  // namespace ftr
