#include "fault/srg_engine.hpp"

#include <algorithm>
#include <array>
#include <bit>

#include "common/contracts.hpp"
#include "common/cpu_features.hpp"
#include "graph/bfs.hpp"

namespace ftr {

namespace {
constexpr std::size_t kLaneBits = 64;

std::size_t bit_words(std::size_t n) { return (n + kLaneBits - 1) / kLaneBits; }
}  // namespace

SrgIndex::SrgIndex(const RoutingTable& table) : n_(table.num_nodes()) {
  route_nodes_.reserve(table.arena_size());
  route_off_.reserve(table.num_routes() + 1);
  route_off_.push_back(0);
  // Every entry of a single-route table is its own ordered pair.
  table.for_each_view([this](Node x, Node y, PathView path) {
    route_src_.push_back(x);
    route_dst_.push_back(y);
    route_pair_.push_back(static_cast<std::uint32_t>(num_pairs_++));
    pair_src_.push_back(x);
    pair_dst_.push_back(y);
    route_nodes_.append(path.begin(), path.end());
    route_off_.push_back(static_cast<std::uint32_t>(route_nodes_.size()));
  });
  finalize_routes();
}

SrgIndex::SrgIndex(const MultiRouteTable& table) : n_(table.num_nodes()) {
  route_nodes_.reserve(table.arena_size());
  route_off_.reserve(table.total_routes() + 1);
  route_off_.push_back(0);
  table.for_each_pair_view([this](Node x, Node y,
                                  const MultiRouteTable::RouteRange& routes) {
    const auto pair_id = static_cast<std::uint32_t>(num_pairs_++);
    pair_src_.push_back(x);
    pair_dst_.push_back(y);
    for (PathView path : routes) {
      route_src_.push_back(x);
      route_dst_.push_back(y);
      route_pair_.push_back(pair_id);
      route_nodes_.append(path.begin(), path.end());
      route_off_.push_back(static_cast<std::uint32_t>(route_nodes_.size()));
    }
  });
  finalize_routes();
}

void SrgIndex::finalize_routes() {
  const std::size_t num_routes = route_src_.size();
  pair_route_count_.assign(num_pairs_, 0);
  for (std::uint32_t pid : route_pair_) ++pair_route_count_[pid];
  // Inverted index: node -> ids of routes whose path contains it (endpoints
  // included, so an endpoint fault kills the route like any interior fault).
  node_route_off_.assign(n_ + 1, 0);
  for (Node v : route_nodes_) ++node_route_off_[v + 1];
  for (std::size_t i = 1; i <= n_; ++i) {
    node_route_off_[i] += node_route_off_[i - 1];
  }
  node_route_ids_.resize(route_nodes_.size());
  std::vector<std::uint32_t> cursor(node_route_off_.begin(),
                                    node_route_off_.end() - 1);
  for (std::uint32_t r = 0; r < num_routes; ++r) {
    for (std::uint32_t i = route_off_[r]; i < route_off_[r + 1]; ++i) {
      node_route_ids_[cursor[route_nodes_[i]]++] = r;
    }
  }

  // Packed-kernel support: pair -> contiguous route-id range. Both table
  // constructors emit a pair's routes back to back, which the kill-mask AND
  // in evaluate_gray_block() relies on — assert rather than assume.
  pair_route_off_.assign(num_pairs_ + 1, 0);
  for (std::size_t p = 0; p < num_pairs_; ++p) {
    pair_route_off_[p + 1] = pair_route_off_[p] + pair_route_count_[p];
  }
  for (std::uint32_t r = 0; r < num_routes; ++r) {
    const std::uint32_t pid = route_pair_[r];
    FTR_ASSERT(r >= pair_route_off_[pid] && r < pair_route_off_[pid + 1]);
  }
  // Ordered pairs grouped by source node (counting sort): the adjacency the
  // lane-parallel BFS walks.
  src_pair_off_.assign(n_ + 1, 0);
  for (Node s : pair_src_) ++src_pair_off_[s + 1];
  for (std::size_t i = 1; i <= n_; ++i) src_pair_off_[i] += src_pair_off_[i - 1];
  src_pair_ids_.resize(num_pairs_);
  cursor.assign(src_pair_off_.begin(), src_pair_off_.end() - 1);
  for (std::uint32_t pid = 0; pid < num_pairs_; ++pid) {
    src_pair_ids_[cursor[pair_src_[pid]]++] = pid;
  }
}

std::size_t SrgIndex::memory_bytes() const {
  // Allocator capacity when owned, mapped extent when snapshot-backed.
  return route_nodes_.memory_bytes() + route_off_.memory_bytes() +
         route_src_.memory_bytes() + route_dst_.memory_bytes() +
         route_pair_.memory_bytes() + pair_src_.memory_bytes() +
         pair_dst_.memory_bytes() + pair_route_count_.memory_bytes() +
         node_route_off_.memory_bytes() + node_route_ids_.memory_bytes() +
         pair_route_off_.memory_bytes() + src_pair_off_.memory_bytes() +
         src_pair_ids_.memory_bytes();
}

SrgScratch::SrgScratch(const SrgIndex& index) : index_(&index) {
  const std::size_t n = index.n_;
  fault_stamp_.assign(n, 0);
  route_stamp_.assign(index.route_src_.size(), 0);
  pair_stamp_.assign(index.num_pairs_, 0);
  arc_off_.assign(n + 1, 0);
  arc_cursor_.assign(n, 0);
  seen_stamp_.assign(n, 0);
  dist_.assign(n, 0);
  queue_.reserve(n);
  arcs_.reserve(index.num_pairs_);
  words_ = bit_words(n);
  visited_bits_.assign(words_, 0);
  frontier_bits_.assign(words_, 0);
  next_bits_.assign(words_, 0);
}

void SrgScratch::reset() {
  std::fill(fault_stamp_.begin(), fault_stamp_.end(), 0);
  std::fill(route_stamp_.begin(), route_stamp_.end(), 0);
  std::fill(pair_stamp_.begin(), pair_stamp_.end(), 0);
  std::fill(seen_stamp_.begin(), seen_stamp_.end(), 0);
  epoch_ = 0;
  bfs_epoch_ = 0;
  inc_active_ = false;
  inc_bits_active_ = false;
  bits_valid_ = false;
}

void SrgScratch::set_epochs_for_testing(std::uint32_t epoch) {
  reset();
  epoch_ = epoch;
  bfs_epoch_ = epoch;
}

std::uint32_t SrgScratch::strike(std::span<const Node> faults) {
  const SrgIndex& ix = *index_;
  ++epoch_;
  if (epoch_ == 0) {
    // Stamp wrap, once per 2^32 strikes: a stale stamp from the previous
    // counter era could otherwise collide with a fresh epoch value. Re-zero
    // every strike-side stamp and restart the counter above the zeroes.
    std::fill(fault_stamp_.begin(), fault_stamp_.end(), 0);
    std::fill(route_stamp_.begin(), route_stamp_.end(), 0);
    std::fill(pair_stamp_.begin(), pair_stamp_.end(), 0);
    epoch_ = 1;
  }
  auto survivors = static_cast<std::uint32_t>(ix.n_);
  for (Node f : faults) {
    FTR_EXPECTS_MSG(f < ix.n_, "fault " << f << " out of range");
    if (fault_stamp_[f] == epoch_) continue;  // duplicate fault id
    fault_stamp_[f] = epoch_;
    --survivors;
    for (std::uint32_t i = ix.node_route_off_[f]; i < ix.node_route_off_[f + 1];
         ++i) {
      route_stamp_[ix.node_route_ids_[i]] = epoch_;
    }
  }

  // Collect surviving arcs, one per ordered pair with a live route.
  arcs_.clear();
  const std::size_t num_routes = ix.route_src_.size();
  for (std::uint32_t r = 0; r < num_routes; ++r) {
    if (route_stamp_[r] == epoch_) continue;
    const std::uint32_t pid = ix.route_pair_[r];
    if (pair_stamp_[pid] == epoch_) continue;
    pair_stamp_[pid] = epoch_;
    arcs_.emplace_back(ix.route_src_[r], ix.route_dst_[r]);
  }

  // Counting sort by source into the scratch CSR.
  std::fill(arc_off_.begin(), arc_off_.end(), 0);
  for (const auto& [src, dst] : arcs_) ++arc_off_[src + 1];
  for (std::size_t i = 1; i <= ix.n_; ++i) arc_off_[i] += arc_off_[i - 1];
  arc_tgt_.resize(arcs_.size());
  std::copy(arc_off_.begin(), arc_off_.end() - 1, arc_cursor_.begin());
  for (const auto& [src, dst] : arcs_) arc_tgt_[arc_cursor_[src]++] = dst;
  bits_valid_ = false;  // bitset view of this set is rebuilt on demand
  return survivors;
}

std::uint32_t SrgScratch::bfs_from(Node s, std::uint32_t* reached_out) {
  ++bfs_epoch_;
  if (bfs_epoch_ == 0) {  // same wraparound discipline as strike()
    std::fill(seen_stamp_.begin(), seen_stamp_.end(), 0);
    bfs_epoch_ = 1;
  }
  queue_.clear();
  queue_.push_back(s);
  seen_stamp_[s] = bfs_epoch_;
  dist_[s] = 0;
  std::uint32_t reached = 1;
  std::uint32_t ecc = 0;
  for (std::size_t qi = 0; qi < queue_.size(); ++qi) {
    const Node u = queue_[qi];
    const std::uint32_t du = dist_[u];
    for (std::uint32_t i = arc_off_[u]; i < arc_off_[u + 1]; ++i) {
      const Node v = arc_tgt_[i];
      if (seen_stamp_[v] == bfs_epoch_) continue;
      seen_stamp_[v] = bfs_epoch_;
      dist_[v] = du + 1;
      ecc = du + 1;
      ++reached;
      queue_.push_back(v);
    }
  }
  if (reached_out != nullptr) *reached_out = reached;
  return ecc;
}

void SrgScratch::ensure_bits() {
  if (bits_valid_) return;
  const SrgIndex& ix = *index_;
  const std::size_t n = ix.n_;
  if (succ_bits_.empty()) {
    succ_bits_.resize(n * words_);
    pred_bits_.resize(n * words_);
    alive_bits_.resize(words_);
  }
  std::fill(succ_bits_.begin(), succ_bits_.end(), 0);
  std::fill(pred_bits_.begin(), pred_bits_.end(), 0);
  std::fill(alive_bits_.begin(), alive_bits_.end(), 0);
  for (Node v = 0; v < n; ++v) {
    if (fault_stamp_[v] != epoch_) {
      alive_bits_[v >> 6] |= std::uint64_t{1} << (v & 63);
    }
  }
  for (const auto& [src, dst] : arcs_) {
    succ_bits_[src * words_ + (dst >> 6)] |= std::uint64_t{1} << (dst & 63);
    pred_bits_[dst * words_ + (src >> 6)] |= std::uint64_t{1} << (src & 63);
  }
  bits_valid_ = true;
}

std::uint32_t SrgScratch::bfs_from_bits(const std::uint64_t* succ,
                                        const std::uint64_t* pred,
                                        const std::uint64_t* alive,
                                        std::uint32_t survivors, Node s,
                                        std::uint32_t* reached_out,
                                        bool fill_dist) {
  const std::size_t W = words_;
  std::fill_n(visited_bits_.data(), W, 0);
  std::fill_n(frontier_bits_.data(), W, 0);
  const std::uint64_t sbit = std::uint64_t{1} << (s & 63);
  visited_bits_[s >> 6] = sbit;
  frontier_bits_[s >> 6] = sbit;
  if (fill_dist) dist_[s] = 0;
  std::uint32_t reached = 1;
  std::uint32_t ecc = 0;
  std::uint32_t level = 0;
  std::uint32_t frontier_count = 1;
  while (frontier_count > 0 && reached < survivors) {
    ++level;
    const std::uint32_t unvisited = survivors - reached;
    // Direction switch on frontier density: top-down ORs one succ row per
    // frontier node; bottom-up probes each unvisited survivor's pred row
    // against the frontier (with early exit), which wins once the frontier
    // is a sizable fraction of what is left — the common regime here, since
    // surviving route graphs are near-complete. The reached SET is
    // direction-invariant, so the choice never changes any result.
    const bool bottom_up =
        static_cast<std::uint64_t>(frontier_count) * 4 >= unvisited;
    if (bottom_up) {
      for (std::size_t w = 0; w < W; ++w) {
        std::uint64_t cand = alive[w] & ~visited_bits_[w];
        std::uint64_t add = 0;
        while (cand != 0) {
          const int b = std::countr_zero(cand);
          cand &= cand - 1;
          const std::uint64_t* row = pred + (w * kLaneBits + b) * W;
          for (std::size_t ww = 0; ww < W; ++ww) {
            if ((row[ww] & frontier_bits_[ww]) != 0) {
              add |= std::uint64_t{1} << b;
              break;
            }
          }
        }
        next_bits_[w] = add;
      }
    } else {
      std::fill_n(next_bits_.data(), W, 0);
      for (std::size_t w = 0; w < W; ++w) {
        std::uint64_t fm = frontier_bits_[w];
        while (fm != 0) {
          const int b = std::countr_zero(fm);
          fm &= fm - 1;
          const std::uint64_t* row = succ + (w * kLaneBits + b) * W;
          for (std::size_t ww = 0; ww < W; ++ww) next_bits_[ww] |= row[ww];
        }
      }
      for (std::size_t w = 0; w < W; ++w) next_bits_[w] &= ~visited_bits_[w];
    }
    std::uint32_t grew = 0;
    for (std::size_t w = 0; w < W; ++w) {
      visited_bits_[w] |= next_bits_[w];
      grew += static_cast<std::uint32_t>(std::popcount(next_bits_[w]));
    }
    if (grew == 0) break;
    reached += grew;
    ecc = level;
    if (fill_dist) {
      for (std::size_t w = 0; w < W; ++w) {
        std::uint64_t m = next_bits_[w];
        while (m != 0) {
          const int b = std::countr_zero(m);
          m &= m - 1;
          dist_[w * kLaneBits + b] = level;
        }
      }
    }
    frontier_bits_.swap(next_bits_);
    frontier_count = grew;
  }
  if (reached_out != nullptr) *reached_out = reached;
  return ecc;
}

template <typename FaultyFn>
std::uint32_t SrgScratch::bitset_diameter(const std::uint64_t* succ,
                                          const std::uint64_t* pred,
                                          const std::uint64_t* alive,
                                          std::uint32_t survivors,
                                          FaultyFn&& faulty) {
  std::uint32_t diam = 0;
  for (Node s = 0; s < index_->n_; ++s) {
    if (faulty(s)) continue;
    std::uint32_t reached = 0;
    const std::uint32_t ecc =
        bfs_from_bits(succ, pred, alive, survivors, s, &reached, false);
    if (reached < survivors) return kUnreachable;
    diam = std::max(diam, ecc);
  }
  return diam;
}

SrgScratch::Result SrgScratch::evaluate(std::span<const Node> faults) {
  const std::uint32_t survivors = strike(faults);
  Result res;
  res.survivors = survivors;
  res.arcs = static_cast<std::uint32_t>(arcs_.size());
  if (survivors <= 1) return res;  // diameter 0 by convention
  if (single_set_kernel() == SrgKernel::kBitset) {
    ensure_bits();
    res.diameter = bitset_diameter(
        succ_bits_.data(), pred_bits_.data(), alive_bits_.data(), survivors,
        [this](Node v) { return fault_stamp_[v] == epoch_; });
    return res;
  }
  std::uint32_t diam = 0;
  for (Node s = 0; s < index_->n_; ++s) {
    if (fault_stamp_[s] == epoch_) continue;
    std::uint32_t reached = 0;
    const std::uint32_t ecc = bfs_from(s, &reached);
    if (reached < survivors) {
      res.diameter = kUnreachable;
      return res;
    }
    diam = std::max(diam, ecc);
  }
  res.diameter = diam;
  return res;
}

SrgScratch::Result SrgScratch::apply(std::span<const Node> faults) {
  Result res;
  res.survivors = strike(faults);
  res.arcs = static_cast<std::uint32_t>(arcs_.size());
  return res;
}

std::uint32_t SrgScratch::surviving_diameter(std::span<const Node> faults) {
  return evaluate(faults).diameter;
}

// --- incremental (Gray) mode -------------------------------------------------

void SrgScratch::begin_incremental(std::span<const Node> faults) {
  const SrgIndex& ix = *index_;
  inc_active_ = true;
  inc_fault_.assign(ix.n_, 0);
  inc_route_kill_.assign(ix.route_src_.size(), 0);
  inc_pair_live_.assign(ix.pair_route_count_.begin(),
                        ix.pair_route_count_.end());
  inc_slot_.resize(ix.num_pairs_);
  inc_adj_.resize(ix.n_);
  for (auto& list : inc_adj_) list.clear();
  for (std::uint32_t pid = 0; pid < ix.num_pairs_; ++pid) {
    auto& list = inc_adj_[ix.pair_src_[pid]];
    inc_slot_[pid] = static_cast<std::uint32_t>(list.size());
    list.push_back({ix.pair_dst_[pid], pid});
  }
  inc_survivors_ = static_cast<std::uint32_t>(ix.n_);
  inc_arcs_ = static_cast<std::uint32_t>(ix.num_pairs_);
  // Latch "maintain bitmaps?" for this incremental session: a scalar-only
  // walk must not pay the O(n^2 / 8) mirror, and strike()/unstrike() need
  // one consistent answer for its whole lifetime.
  inc_bits_active_ = (kernel_ != SrgKernel::kScalar);
  if (inc_bits_active_) {
    inc_succ_bits_.assign(ix.n_ * words_, 0);
    inc_pred_bits_.assign(ix.n_ * words_, 0);
    inc_alive_bits_.assign(words_, 0);
    for (Node v = 0; v < ix.n_; ++v) {
      inc_alive_bits_[v >> 6] |= std::uint64_t{1} << (v & 63);
    }
    for (std::uint32_t pid = 0; pid < ix.num_pairs_; ++pid) {
      const Node src = ix.pair_src_[pid];
      const Node dst = ix.pair_dst_[pid];
      inc_succ_bits_[src * words_ + (dst >> 6)] |= std::uint64_t{1}
                                                   << (dst & 63);
      inc_pred_bits_[dst * words_ + (src >> 6)] |= std::uint64_t{1}
                                                   << (src & 63);
    }
  }
  for (Node f : faults) strike(f);
}

void SrgScratch::inc_add_arc(std::uint32_t pair) {
  const Node src = index_->pair_src_[pair];
  const Node dst = index_->pair_dst_[pair];
  auto& list = inc_adj_[src];
  inc_slot_[pair] = static_cast<std::uint32_t>(list.size());
  list.push_back({dst, pair});
  ++inc_arcs_;
  if (inc_bits_active_) {
    // Ordered pairs are unique, so arc <-> pair is one-to-one and the bit
    // flip cannot clobber another pair's arc.
    inc_succ_bits_[src * words_ + (dst >> 6)] |= std::uint64_t{1} << (dst & 63);
    inc_pred_bits_[dst * words_ + (src >> 6)] |= std::uint64_t{1} << (src & 63);
  }
}

void SrgScratch::inc_remove_arc(std::uint32_t pair) {
  const Node src = index_->pair_src_[pair];
  const Node dst = index_->pair_dst_[pair];
  auto& list = inc_adj_[src];
  const std::uint32_t slot = inc_slot_[pair];
  list[slot] = list.back();
  inc_slot_[list[slot].pair] = slot;
  list.pop_back();
  --inc_arcs_;
  if (inc_bits_active_) {
    inc_succ_bits_[src * words_ + (dst >> 6)] &=
        ~(std::uint64_t{1} << (dst & 63));
    inc_pred_bits_[dst * words_ + (src >> 6)] &=
        ~(std::uint64_t{1} << (src & 63));
  }
}

void SrgScratch::strike(Node v) {
  const SrgIndex& ix = *index_;
  FTR_EXPECTS_MSG(inc_active_, "begin_incremental() first");
  FTR_EXPECTS_MSG(v < ix.n_, "fault " << v << " out of range");
  FTR_EXPECTS_MSG(!inc_fault_[v], "node " << v << " already faulty");
  inc_fault_[v] = 1;
  --inc_survivors_;
  if (inc_bits_active_) {
    inc_alive_bits_[v >> 6] &= ~(std::uint64_t{1} << (v & 63));
  }
  for (std::uint32_t i = ix.node_route_off_[v]; i < ix.node_route_off_[v + 1];
       ++i) {
    const std::uint32_t r = ix.node_route_ids_[i];
    if (inc_route_kill_[r]++ != 0) continue;  // already dead via another fault
    const std::uint32_t pid = ix.route_pair_[r];
    if (--inc_pair_live_[pid] == 0) inc_remove_arc(pid);
  }
}

void SrgScratch::unstrike(Node v) {
  const SrgIndex& ix = *index_;
  FTR_EXPECTS_MSG(inc_active_, "begin_incremental() first");
  FTR_EXPECTS_MSG(v < ix.n_, "fault " << v << " out of range");
  FTR_EXPECTS_MSG(inc_fault_[v], "node " << v << " is not faulty");
  inc_fault_[v] = 0;
  ++inc_survivors_;
  if (inc_bits_active_) {
    inc_alive_bits_[v >> 6] |= std::uint64_t{1} << (v & 63);
  }
  for (std::uint32_t i = ix.node_route_off_[v]; i < ix.node_route_off_[v + 1];
       ++i) {
    const std::uint32_t r = ix.node_route_ids_[i];
    if (--inc_route_kill_[r] != 0) continue;  // still dead via another fault
    const std::uint32_t pid = ix.route_pair_[r];
    if (inc_pair_live_[pid]++ == 0) inc_add_arc(pid);
  }
}

std::uint32_t SrgScratch::bfs_from_inc(Node s, std::uint32_t* reached_out) {
  ++bfs_epoch_;
  if (bfs_epoch_ == 0) {  // same wraparound discipline as bfs_from()
    std::fill(seen_stamp_.begin(), seen_stamp_.end(), 0);
    bfs_epoch_ = 1;
  }
  queue_.clear();
  queue_.push_back(s);
  seen_stamp_[s] = bfs_epoch_;
  dist_[s] = 0;
  std::uint32_t reached = 1;
  std::uint32_t ecc = 0;
  for (std::size_t qi = 0; qi < queue_.size(); ++qi) {
    const Node u = queue_[qi];
    const std::uint32_t du = dist_[u];
    for (const IncArc& arc : inc_adj_[u]) {
      const Node v = arc.dst;
      if (seen_stamp_[v] == bfs_epoch_) continue;
      seen_stamp_[v] = bfs_epoch_;
      dist_[v] = du + 1;
      ecc = du + 1;
      ++reached;
      queue_.push_back(v);
    }
  }
  if (reached_out != nullptr) *reached_out = reached;
  return ecc;
}

SrgScratch::Result SrgScratch::evaluate_incremental() {
  FTR_EXPECTS_MSG(inc_active_, "begin_incremental() first");
  Result res;
  res.survivors = inc_survivors_;
  res.arcs = inc_arcs_;
  if (inc_survivors_ <= 1) return res;  // diameter 0 by convention
  if (inc_bits_active_ && single_set_kernel() == SrgKernel::kBitset) {
    res.diameter = bitset_diameter(
        inc_succ_bits_.data(), inc_pred_bits_.data(), inc_alive_bits_.data(),
        inc_survivors_, [this](Node v) { return inc_fault_[v] != 0; });
    return res;
  }
  std::uint32_t diam = 0;
  for (Node s = 0; s < index_->n_; ++s) {
    if (inc_fault_[s]) continue;
    std::uint32_t reached = 0;
    const std::uint32_t ecc = bfs_from_inc(s, &reached);
    if (reached < inc_survivors_) {
      res.diameter = kUnreachable;
      return res;
    }
    diam = std::max(diam, ecc);
  }
  res.diameter = diam;
  return res;
}

Digraph SrgScratch::incremental_surviving_graph() const {
  FTR_EXPECTS_MSG(inc_active_, "begin_incremental() first");
  const SrgIndex& ix = *index_;
  Digraph r(ix.n_);
  for (Node v = 0; v < ix.n_; ++v) {
    if (inc_fault_[v]) r.remove_node(v);
  }
  // Arcs in route-id order, one per pair at its FIRST live route — the
  // exact insertion order strike()+last_surviving_graph() produces, so
  // order-sensitive consumers see identical digraphs on both paths.
  inc_emitted_.assign(ix.num_pairs_, 0);  // member buffer: no per-set alloc
  const std::size_t num_routes = ix.route_src_.size();
  for (std::uint32_t rt = 0; rt < num_routes; ++rt) {
    if (inc_route_kill_[rt] != 0) continue;
    const std::uint32_t pid = ix.route_pair_[rt];
    if (inc_emitted_[pid]) continue;
    inc_emitted_[pid] = 1;
    r.add_arc(ix.route_src_[rt], ix.route_dst_[rt]);
  }
  return r;
}

// --- packed wide-lane Gray mode ----------------------------------------------
//
// The W-word block body itself lives in fault/srg_packed_impl.hpp,
// instantiated per ISA (portable/-mavx2/-mavx512f) and dispatched at
// runtime — this file only resolves the width, sizes the W-strided
// scratch, walks the enumerator (phase a), and translates the kernel's
// per-lane outputs back into Results.

void SrgScratch::set_lane_width(unsigned lanes) {
  FTR_EXPECTS_MSG(lanes == 0 || is_valid_lane_width(lanes),
                  "lane width " << lanes << " is not auto/64/128/256/512");
  if (lanes == pk_requested_lanes_ && pk_lanes_ != 0) return;
  pk_requested_lanes_ = lanes;
  pk_lanes_ = 0;  // re-resolve (and re-size the packed state) on next use
}

unsigned SrgScratch::lane_width() {
  if (pk_lanes_ == 0) {
    pk_lanes_ = resolve_lane_width(pk_requested_lanes_);
    pk_fn_ = packed::select_block_fn(pk_lanes_ / kLaneBits);
    FTR_ASSERT(pk_fn_ != nullptr);
  }
  return pk_lanes_;
}

void SrgScratch::ensure_packed_state() {
  const unsigned words = lane_width() / kLaneBits;
  if (pk_words_ == words && !lane_node_mask_.empty()) return;
  const SrgIndex& ix = *index_;
  const std::size_t w = words;
  lane_node_mask_.assign(ix.n_ * w, 0);
  route_kill_mask_.assign(ix.route_src_.size() * w, 0);
  pair_dead_mask_.assign(ix.num_pairs_ * w, 0);
  pair_dirty_.assign(ix.num_pairs_, 0);
  pk_visited_.assign(ix.n_ * w, 0);
  pk_new_.assign(ix.n_ * w, 0);
  pk_next_mask_.assign(ix.n_ * w, 0);
  // The dispatched kernel fills these through raw pointers, so they are
  // sized (not just reserved) to their capacity contracts.
  pk_dirty_routes_.assign(ix.route_src_.size(), 0);
  pk_dirty_pairs_.assign(ix.num_pairs_, 0);
  pk_frontier_.assign(ix.n_, 0);
  pk_next_.assign(ix.n_, 0);
  pk_dead_pairs_.assign(kLaneBits * w, 0);
  pk_diam_.assign(kLaneBits * w, 0);
  pk_ecc_.assign(kLaneBits * w, 0);
  pk_disconnected_.assign(w, 0);
  pk_words_ = words;
}

void SrgScratch::evaluate_gray_block(GraySubsetEnumerator& e,
                                     std::size_t count, Result* out) {
  ensure_packed_state();
  const unsigned W = pk_words_;
  FTR_EXPECTS(count >= 1 && count <= std::size_t{kLaneBits} * W);
  FTR_EXPECTS_MSG(e.valid(), "enumerator exhausted before the block");
  const SrgIndex& ix = *index_;
  const std::size_t n = ix.n_;

  // (a) Lane membership: walk the count-1 revolving-door transitions once,
  // accumulating per-node masks of the lanes in which the node is faulty.
  const auto& first = e.current();
  const std::size_t f = first.size();
  pk_members_.assign(first.begin(), first.end());
  lane_touched_.clear();
  for (std::size_t lane = 0; lane < count; ++lane) {
    if (lane > 0) {
      const bool ok = e.advance();
      FTR_EXPECTS_MSG(ok, "enumeration ended inside a packed block");
      const GrayTransition& t = e.last_transition();
      for (Node& m : pk_members_) {
        if (m == static_cast<Node>(t.out)) {
          m = static_cast<Node>(t.in);
          break;
        }
      }
    }
    const std::size_t word = lane / kLaneBits;
    const std::uint64_t bit = std::uint64_t{1} << (lane % kLaneBits);
    for (Node v : pk_members_) {
      FTR_EXPECTS_MSG(v < n, "fault " << v << " out of range");
      std::uint64_t* block = lane_node_mask_.data() + std::size_t{v} * W;
      std::uint64_t seen = 0;
      for (unsigned i = 0; i < W; ++i) seen |= block[i];
      if (seen == 0) lane_touched_.push_back(v);
      block[word] |= bit;
    }
  }

  // (b)-(d) + sparse cleanup: the runtime-dispatched W-word block body.
  packed::PackedCtx ctx;
  ctx.n = n;
  ctx.num_pairs = ix.num_pairs_;
  ctx.node_route_off = ix.node_route_off_.data();
  ctx.node_route_ids = ix.node_route_ids_.data();
  ctx.route_pair = ix.route_pair_.data();
  ctx.pair_route_off = ix.pair_route_off_.data();
  ctx.pair_dst = ix.pair_dst_.data();
  ctx.src_pair_off = ix.src_pair_off_.data();
  ctx.src_pair_ids = ix.src_pair_ids_.data();
  ctx.lane_node_mask = lane_node_mask_.data();
  ctx.route_kill_mask = route_kill_mask_.data();
  ctx.pair_dead_mask = pair_dead_mask_.data();
  ctx.pair_dirty = pair_dirty_.data();
  ctx.visited = pk_visited_.data();
  ctx.new_mask = pk_new_.data();
  ctx.next_mask = pk_next_mask_.data();
  ctx.lane_touched = lane_touched_.data();
  ctx.lane_touched_count = lane_touched_.size();
  ctx.dirty_routes = pk_dirty_routes_.data();
  ctx.dirty_pairs = pk_dirty_pairs_.data();
  ctx.frontier = pk_frontier_.data();
  ctx.next = pk_next_.data();
  ctx.dead_pairs = pk_dead_pairs_.data();
  ctx.diam = pk_diam_.data();
  ctx.ecc = pk_ecc_.data();
  ctx.disconnected = pk_disconnected_.data();
  const auto survivors = static_cast<std::uint32_t>(n - f);
  pk_fn_(ctx, count, survivors);
  lane_touched_.clear();

  for (std::size_t lane = 0; lane < count; ++lane) {
    out[lane].survivors = survivors;
    out[lane].arcs =
        static_cast<std::uint32_t>(ix.num_pairs_) - pk_dead_pairs_[lane];
    const bool disconnected =
        ((pk_disconnected_[lane / kLaneBits] >> (lane % kLaneBits)) & 1) != 0;
    out[lane].diameter = survivors <= 1 ? 0
                         : disconnected ? kUnreachable
                                        : pk_diam_[lane];
  }
}

std::uint32_t SrgScratch::componentwise_diameter(
    std::span<const Node> faults, std::span<const std::uint32_t> comp) {
  FTR_EXPECTS(comp.size() == index_->n_);
  const std::uint32_t survivors = strike(faults);
  if (survivors <= 1) return 0;
  std::uint32_t worst = 0;
  if (single_set_kernel() == SrgKernel::kBitset) {
    // Same per-source scan, reachability answered from the visited bitmap
    // and distances from the per-level dist_ fill (BFS levels are unique,
    // so dist_ is kernel-invariant).
    ensure_bits();
    for (Node s = 0; s < index_->n_; ++s) {
      if (fault_stamp_[s] == epoch_) continue;
      bfs_from_bits(succ_bits_.data(), pred_bits_.data(), alive_bits_.data(),
                    survivors, s, nullptr, /*fill_dist=*/true);
      for (Node t = 0; t < index_->n_; ++t) {
        if (t == s || fault_stamp_[t] == epoch_ || comp[t] != comp[s]) continue;
        if ((visited_bits_[t >> 6] & (std::uint64_t{1} << (t & 63))) == 0) {
          return kUnreachable;
        }
        worst = std::max(worst, dist_[t]);
      }
    }
    return worst;
  }
  for (Node s = 0; s < index_->n_; ++s) {
    if (fault_stamp_[s] == epoch_) continue;
    bfs_from(s, nullptr);
    for (Node t = 0; t < index_->n_; ++t) {
      if (t == s || fault_stamp_[t] == epoch_ || comp[t] != comp[s]) continue;
      if (seen_stamp_[t] != bfs_epoch_) return kUnreachable;
      worst = std::max(worst, dist_[t]);
    }
  }
  return worst;
}

Digraph SrgScratch::surviving_graph(std::span<const Node> faults) {
  strike(faults);
  return last_surviving_graph();
}

Digraph SrgScratch::last_surviving_graph() const {
  FTR_EXPECTS_MSG(epoch_ != 0, "no fault set has been struck yet");
  Digraph r(index_->n_);
  for (Node v = 0; v < index_->n_; ++v) {
    if (fault_stamp_[v] == epoch_) r.remove_node(v);
  }
  for (const auto& [src, dst] : arcs_) r.add_arc(src, dst);
  return r;
}

}  // namespace ftr
