// Edge faults (paper Section 1): "We handle the case of faulty edges by
// assuming that one of the endpoints of the faulty edges is a faulty node,
// an assumption that can only weaken our results."
//
// This module makes that reduction explicit and testable:
//  * surviving_graph_with_edge_faults computes the TRUE surviving route
//    graph under mixed node+edge faults (a route dies iff it contains a
//    faulty node or traverses a faulty edge);
//  * reduce_edge_faults_to_nodes performs the paper's substitution, and the
//    tests verify the reduction is conservative — the reduced surviving
//    graph is always a subgraph of the true one, so any (d, f) bound proven
//    in the node model carries over.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/graph.hpp"
#include "routing/route_table.hpp"

namespace ftr {

/// An undirected edge fault, stored with u < v.
struct EdgeFault {
  Node u;
  Node v;
};

/// Canonicalizes (orders endpoints of) an edge fault.
EdgeFault make_edge_fault(Node a, Node b);

/// The true surviving route graph under node faults + edge faults: an arc
/// (x, y) survives iff the route exists, x and y and all intermediates are
/// non-faulty, and no traversed edge is faulty.
Digraph surviving_graph_with_edge_faults(const RoutingTable& table,
                                         const std::vector<Node>& node_faults,
                                         const std::vector<EdgeFault>& edge_faults);

/// diam of the above; kUnreachable when some ordered pair is cut off.
std::uint32_t surviving_diameter_with_edge_faults(
    const RoutingTable& table, const std::vector<Node>& node_faults,
    const std::vector<EdgeFault>& edge_faults);

/// The paper's reduction: every edge fault is charged to one endpoint,
/// producing a pure node-fault set of size |node_faults| + |edge_faults|
/// (or less when charges coincide). The chosen endpoint is the one with the
/// smaller id — any fixed rule is valid; the reduction is conservative
/// regardless.
std::vector<Node> reduce_edge_faults_to_nodes(
    const std::vector<Node>& node_faults,
    const std::vector<EdgeFault>& edge_faults);

}  // namespace ftr
