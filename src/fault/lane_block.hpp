// LaneBlock<W>: W little-endian words of packed evaluation lanes — the
// value type of the width-parameterized packed SRG kernel. Lane l lives
// in bit (l % 64) of word (l / 64), so W ∈ {1, 2, 4, 8} gives
// 64/128/256/512 Gray-adjacent fault sets per block.
//
// TEXTUAL FRAGMENT, not a standalone header: srg_packed_impl.hpp
// includes this file inside the ANONYMOUS namespace of each per-ISA
// translation unit (portable / -mavx2 / -mavx512f), so every TU gets
// its own internal-linkage copy compiled with its own ISA flags and
// the linker can never ODR-merge AVX codegen into the portable path.
// For the same reason the fragment must not call any std:: function
// templates — only builtins and raw loops.
//
// The bulk ops (AND/OR/ANDNOT combines, broadcast, store) are plain
// word loops: with W known at compile time they unroll and
// auto-vectorize to whatever the enclosing TU's -m flags allow. The one
// op compilers reliably fumble — the any-lane test, which wants a
// single vptest/ktest instead of an OR-reduce — gets explicit AVX2 and
// AVX-512 paths, active exactly when the enclosing TU is compiled with
// those flags.
#if !defined(FTR_LANE_BLOCK_FRAGMENT)
#error "lane_block.hpp is a fragment; include it via srg_packed_impl.hpp"
#endif

template <unsigned W>
struct LaneBlock {
  static_assert(W == 1 || W == 2 || W == 4 || W == 8,
                "packed lane blocks come in 1/2/4/8 words");

  std::uint64_t w[W];

  static inline LaneBlock zero() {
    LaneBlock b;
    for (unsigned i = 0; i < W; ++i) b.w[i] = 0;
    return b;
  }

  static inline LaneBlock ones() {
    LaneBlock b;
    for (unsigned i = 0; i < W; ++i) b.w[i] = ~std::uint64_t{0};
    return b;
  }

  /// The mask with lanes [0, count) set; count must be in 1..64*W.
  static inline LaneBlock first_lanes(std::size_t count) {
    LaneBlock b;
    for (unsigned i = 0; i < W; ++i) {
      const std::size_t base = std::size_t{64} * i;
      if (count >= base + 64) {
        b.w[i] = ~std::uint64_t{0};
      } else if (count > base) {
        b.w[i] = (std::uint64_t{1} << (count - base)) - 1;
      } else {
        b.w[i] = 0;
      }
    }
    return b;
  }

  static inline LaneBlock load(const std::uint64_t* p) {
    LaneBlock b;
    for (unsigned i = 0; i < W; ++i) b.w[i] = p[i];
    return b;
  }

  inline void store(std::uint64_t* p) const {
    for (unsigned i = 0; i < W; ++i) p[i] = w[i];
  }

  /// True iff any lane bit is set. This is the packed kernel's branch
  /// workhorse (skip dead arcs, detect first touch, early-exit scans).
  inline bool any() const {
#if defined(__AVX512F__)
    if constexpr (W == 8) {
      const __m512i v = _mm512_loadu_si512(static_cast<const void*>(w));
      return _mm512_test_epi64_mask(v, v) != 0;
    }
#endif
#if defined(__AVX2__)
    if constexpr (W == 4) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w));
      return _mm256_testz_si256(v, v) == 0;
    }
    if constexpr (W == 8) {
      const __m256i lo =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w));
      const __m256i hi =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 4));
      const __m256i both = _mm256_or_si256(lo, hi);
      return _mm256_testz_si256(both, both) == 0;
    }
#endif
    std::uint64_t acc = 0;
    for (unsigned i = 0; i < W; ++i) acc |= w[i];
    return acc != 0;
  }

  inline bool none() const { return !any(); }

  friend inline LaneBlock operator&(LaneBlock a, LaneBlock b) {
    LaneBlock r;
    for (unsigned i = 0; i < W; ++i) r.w[i] = a.w[i] & b.w[i];
    return r;
  }

  friend inline LaneBlock operator|(LaneBlock a, LaneBlock b) {
    LaneBlock r;
    for (unsigned i = 0; i < W; ++i) r.w[i] = a.w[i] | b.w[i];
    return r;
  }

  /// a & ~b — one vpandn on vector ISAs; the kernel's hot combine.
  friend inline LaneBlock andnot(LaneBlock a, LaneBlock b) {
    LaneBlock r;
    for (unsigned i = 0; i < W; ++i) r.w[i] = a.w[i] & ~b.w[i];
    return r;
  }

  friend inline bool operator==(LaneBlock a, LaneBlock b) {
    std::uint64_t diff = 0;
    for (unsigned i = 0; i < W; ++i) diff |= a.w[i] ^ b.w[i];
    return diff == 0;
  }

  /// Calls fn(lane) for every set lane, ascending. Scalar by design:
  /// the consumers (eccentricity stamps, per-lane counters) are
  /// irreducibly per-lane.
  template <typename Fn>
  inline void for_each_lane(Fn&& fn) const {
    for (unsigned i = 0; i < W; ++i) {
      std::uint64_t m = w[i];
      while (m != 0) {
        fn(std::size_t{64} * i +
           static_cast<std::size_t>(__builtin_ctzll(m)));
        m &= m - 1;
      }
    }
  }
};
