#include "fault/edge_faults.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/contracts.hpp"
#include "graph/bfs.hpp"

namespace ftr {

EdgeFault make_edge_fault(Node a, Node b) {
  FTR_EXPECTS(a != b);
  return a < b ? EdgeFault{a, b} : EdgeFault{b, a};
}

namespace {

std::uint64_t edge_key(Node u, Node v, std::size_t n) {
  return static_cast<std::uint64_t>(std::min(u, v)) * n + std::max(u, v);
}

}  // namespace

Digraph surviving_graph_with_edge_faults(
    const RoutingTable& table, const std::vector<Node>& node_faults,
    const std::vector<EdgeFault>& edge_faults) {
  const std::size_t n = table.num_nodes();
  std::vector<char> faulty(n, 0);
  for (Node f : node_faults) {
    FTR_EXPECTS(f < n);
    faulty[f] = 1;
  }
  std::unordered_set<std::uint64_t> dead_edges;
  for (const EdgeFault& ef : edge_faults) {
    FTR_EXPECTS(ef.u < n && ef.v < n && ef.u != ef.v);
    dead_edges.insert(edge_key(ef.u, ef.v, n));
  }

  Digraph r(n);
  for (Node v = 0; v < n; ++v) {
    if (faulty[v]) r.remove_node(v);
  }
  table.for_each_view([&](Node x, Node y, PathView path) {
    if (faulty[x] || faulty[y]) return;
    for (Node v : path) {
      if (faulty[v]) return;
    }
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      if (dead_edges.count(edge_key(path[i], path[i + 1], n))) return;
    }
    r.add_arc(x, y);
  });
  return r;
}

std::uint32_t surviving_diameter_with_edge_faults(
    const RoutingTable& table, const std::vector<Node>& node_faults,
    const std::vector<EdgeFault>& edge_faults) {
  return diameter(
      surviving_graph_with_edge_faults(table, node_faults, edge_faults));
}

std::vector<Node> reduce_edge_faults_to_nodes(
    const std::vector<Node>& node_faults,
    const std::vector<EdgeFault>& edge_faults) {
  std::unordered_set<Node> out(node_faults.begin(), node_faults.end());
  for (const EdgeFault& ef : edge_faults) {
    out.insert(std::min(ef.u, ef.v));
  }
  std::vector<Node> result(out.begin(), out.end());
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace ftr
