#include "fault/fault_gen.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "common/contracts.hpp"

namespace ftr {

std::vector<std::vector<Node>> random_fault_sets(std::size_t n, std::size_t f,
                                                 std::size_t count, Rng& rng) {
  FTR_EXPECTS(f <= n);
  std::vector<std::vector<Node>> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto sample = rng.sample(n, f);
    std::vector<Node> faults(sample.begin(), sample.end());
    out.push_back(std::move(faults));
  }
  return out;
}

std::vector<Node> targeted_fault_set(std::size_t n,
                                     const std::vector<Node>& preferred,
                                     std::size_t f, Rng& rng) {
  FTR_EXPECTS(f <= n);
  std::unordered_set<Node> chosen;
  // Draw from the preferred pool first, in random order.
  const auto perm = rng.permutation(preferred.size());
  for (std::size_t i = 0; i < perm.size() && chosen.size() < f; ++i) {
    chosen.insert(preferred[perm[i]]);
  }
  // Fill with uniform nodes if the pool was too small.
  while (chosen.size() < f) {
    chosen.insert(static_cast<Node>(rng.below(n)));
  }
  std::vector<Node> out(chosen.begin(), chosen.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Node> nodes_by_route_load(const RoutingTable& table) {
  std::vector<std::uint64_t> load(table.num_nodes(), 0);
  table.for_each_view([&](Node, Node, PathView path) {
    for (Node v : path) ++load[v];
  });
  std::vector<Node> ranked(table.num_nodes());
  std::iota(ranked.begin(), ranked.end(), 0);
  std::stable_sort(ranked.begin(), ranked.end(),
                   [&](Node a, Node b) { return load[a] > load[b]; });
  return ranked;
}

}  // namespace ftr
