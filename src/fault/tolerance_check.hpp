// The (d, f)-tolerance verification harness: the bridge between the paper's
// theorems and the benchmark tables. Given a routing and a claimed bound, it
// measures the worst surviving diameter over fault sets of size <= f —
// exhaustively when affordable, otherwise with sampling + targeted
// hill-climbing — and reports claimed vs. measured.
//
// Checks fan their fault sets across ToleranceCheckOptions::threads workers
// (one SrgScratch per worker over one shared SrgIndex); the report —
// verdict, witness, evaluation count — is bit-identical for any thread
// count. Exhaustive checks at f <= 3 take the revolving-door fast path
// (Gray-order enumeration, O(delta) strike/unstrike per set), so the
// reported witness is the first worst set in gray order.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "fault/adversary.hpp"
#include "graph/graph.hpp"
#include "routing/multi_route_table.hpp"
#include "routing/route_table.hpp"

namespace ftr {

struct ToleranceReport {
  std::uint32_t claimed_bound = 0;   // the theorem's d
  std::uint32_t faults = 0;          // the f actually injected
  std::uint32_t worst_diameter = 0;  // measured (kUnreachable = disconnected)
  std::uint64_t fault_sets_checked = 0;
  bool exhaustive = false;  // ground truth vs. adversarial lower bound
  bool holds = false;       // worst_diameter <= claimed_bound
  std::vector<Node> worst_faults;

  std::string summary() const;
};

struct ToleranceCheckOptions {
  /// Enumerate all C(n, f) fault sets when that count is <= this budget.
  std::uint64_t exhaustive_budget = 20000;
  /// Otherwise: this many uniform samples ...
  std::size_t samples = 200;
  /// ... plus hill-climbing with this many restarts and step budget.
  std::size_t hillclimb_restarts = 6;
  std::size_t hillclimb_steps = 24;
  /// Extra seed sets (e.g. concentrator-targeted) for the hill-climber.
  std::vector<std::vector<Node>> seeds;
  /// How the check executes (see common/exec_policy.hpp): threads fan the
  /// fault sweep across workers, kernel/lanes drive the evaluators (kAuto
  /// runs the f <= 3 exhaustive fast path packed and the sampled /
  /// hill-climbing evaluators on the bitset kernel), executor picks the
  /// chunk scheduler. The report is identical for any value of any of it.
  ExecPolicy exec;
};

/// Worst-case check for exactly f faults (the paper's bounds are monotone
/// in f for the exhaustive case; sweep callers vary f explicitly).
ToleranceReport check_tolerance(const RoutingTable& table, std::uint32_t f,
                                std::uint32_t claimed_bound, Rng& rng,
                                const ToleranceCheckOptions& options = {});

ToleranceReport check_tolerance(const MultiRouteTable& table, std::uint32_t f,
                                std::uint32_t claimed_bound, Rng& rng,
                                const ToleranceCheckOptions& options = {});

/// Index-handle forms: run the same check against a PREBUILT shared
/// preprocessing instead of constructing an SrgIndex per call. This is what
/// the serving layer's table registry hands out, so repeated checks against
/// the same table pay the preprocessing once. `index` must have been built
/// from `table`; the report is bit-identical to the table-only overloads
/// (which now delegate here after building a fresh index).
ToleranceReport check_tolerance(const RoutingTable& table,
                                const std::shared_ptr<const SrgIndex>& index,
                                std::uint32_t f, std::uint32_t claimed_bound,
                                Rng& rng,
                                const ToleranceCheckOptions& options = {});

ToleranceReport check_tolerance(const MultiRouteTable& table,
                                const std::shared_ptr<const SrgIndex>& index,
                                std::uint32_t f, std::uint32_t claimed_bound,
                                Rng& rng,
                                const ToleranceCheckOptions& options = {});

/// Generic version over a single evaluator. The evaluator may own scratch
/// state, so this path always runs serially (options.threads is ignored).
ToleranceReport check_tolerance_with(std::size_t n, const FaultEvaluator& eval,
                                     std::uint32_t f,
                                     std::uint32_t claimed_bound, Rng& rng,
                                     const ToleranceCheckOptions& options);

/// Generic parallel version over an evaluator factory (one evaluator per
/// worker chunk). All randomness derives from `seed` via counter-based
/// streams, so the report is a pure function of its arguments.
ToleranceReport check_tolerance_with(std::size_t n,
                                     const FaultEvaluatorFactory& make_eval,
                                     std::uint32_t f,
                                     std::uint32_t claimed_bound,
                                     std::uint64_t seed,
                                     const ToleranceCheckOptions& options);

}  // namespace ftr
