// Batched evaluation of surviving route graphs R(G, rho)/F.
//
// The hot loop of every experiment in this repo is "strike a fault set,
// materialize the surviving route graph, measure its diameter" — repeated
// across thousands of fault sets against the SAME routing table (tolerance
// checks, adversarial hill-climbing, recovery sweeps). The one-shot path in
// fault/surviving.cpp rebuilds a Digraph (one heap vector per node) and
// re-walks every route per fault set; this layer preprocesses the table
// once and answers each fault set from reusable, epoch-stamped scratch
// buffers.
//
// The split matters for the parallel sweep layer:
//
//  * SrgIndex is the immutable preprocessing — the route arena flattened
//    into per-route node ranges plus a node -> routes inverted index. It is
//    read-only after construction, so ONE index serves any number of
//    concurrent workers.
//  * SrgScratch is the per-thread mutable state — the epoch-stamped kill
//    index, the scratch arc CSR, and the BFS queues. Each sweep worker owns
//    one; evaluations are allocation-free after warm-up.
//  * SurvivingRouteGraphEngine is the single-threaded facade (one shared
//    index + one scratch) that all pre-existing call sites keep using; its
//    index() handle is what parallel sweeps fan out to worker scratches.
//
// Per fault set:
//  * a fault set of size f kills its routes in O(sum over faults of
//    routes-through-fault) via the inverted index instead of re-scanning
//    every route node;
//  * one pass over the route list collects surviving arcs into a scratch
//    CSR (counting sort by source), with per-pair dedup for multiroutes;
//  * BFS runs over the scratch CSR with stamped distance arrays and a flat
//    queue — no allocation after the first evaluation.
//
// On top of the per-set full-rebuild path, SrgScratch has an INCREMENTAL
// mode for enumerations that visit fault sets by one-element deltas (the
// revolving-door exhaustive sweep): begin_incremental() seeds a fault set,
// strike(v)/unstrike(v) apply a delta in O(routes through v) by maintaining
// exact counts (per-route fault counts, per-pair live-route counts, a
// per-source live-arc adjacency with O(1) insert/remove) instead of
// re-deriving the kill index from scratch. evaluate_incremental() answers
// the same Result a full-rebuild evaluate() would on the same fault set —
// the differential tests in tests/test_srg_engine.cpp pin the two paths
// together.
//
// Semantics match fault/surviving.cpp exactly: an arc x -> y survives iff
// some route rho(x, y) avoids every fault (endpoints included), and the
// diameter is the directed max over ordered survivor pairs (kUnreachable if
// any pair cannot route, 0 when fewer than two survivors remain).
//
// EVALUATION KERNELS. The diameter BFS dominates every evaluation (the
// surviving route graph is near-complete — one arc per ordered pair with a
// live route — so each BFS touches ~n^2 arcs), and SrgScratch offers three
// interchangeable kernels for it, selected via set_kernel():
//
//  * kScalar — the original stamped-queue BFS over the scratch CSR. Kept as
//    the differential oracle every other kernel is tested against.
//  * kBitset — word-packed frontier/visited bitmaps with a
//    direction-optimizing (top-down/bottom-up) switch driven by frontier
//    density. The surviving route graphs are dense-frontier for most of
//    each BFS, exactly the regime where bottom-up's "scan unvisited nodes,
//    test predecessor rows" wins. On the incremental path the adjacency
//    bitmaps are maintained O(delta) by strike()/unstrike().
//  * kPacked — evaluate_gray_block(): up to lane_width() adjacent
//    revolving-door fault sets evaluated against one W-word lane block at a
//    time (W in {1,2,4,8} words -> 64/128/256/512 lanes; set_lane_width()
//    forces one, auto picks the widest the CPU profits from — see
//    common/cpu_features.hpp). Per-route kill masks, per-pair dead masks,
//    and a lane-parallel BFS turn route liveness, arc counts, and
//    reachability into AND/OR/popcount over lane blocks; the block body is
//    dispatched at runtime to a portable, AVX2, or AVX-512 instantiation
//    (fault/srg_packed.hpp). Packed applies ONLY to Gray-adjacent streams
//    (the exhaustive sweeps); for single-set evaluation it degrades to
//    kBitset. Lanes are consumed in rank order, so neither the width nor
//    the chosen instantiation is observable in any result.
//  * kAuto (default) — bitset for single sets; consumers that enumerate in
//    Gray order (sweep_exhaustive_gray, exhaustive_worst_faults_gray) pick
//    packed when no per-set materialization is needed.
//
// All kernels produce bit-identical Results for every fault set — pinned by
// the differential suite in tests/test_srg_kernels.cpp — so kernel choice,
// like thread count and batch size, never leaks into any output.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "common/combinatorics.hpp"
#include "common/exec_policy.hpp"
#include "common/flat_array.hpp"
#include "fault/srg_packed.hpp"
#include "graph/digraph.hpp"
#include "graph/graph.hpp"
#include "routing/multi_route_table.hpp"
#include "routing/route_table.hpp"

namespace ftr {

// SrgKernel (the selection knob, its name/parse helpers, and the kAuto
// resolution rule) lives in common/exec_policy.hpp with the rest of the
// execution policy; this header provides the kernels themselves.

/// Immutable preprocessing of one routing table: flattened routes plus the
/// node -> routes inverted index. Thread-safe to share by const reference
/// across any number of SrgScratch workers.
class SrgIndex {
 public:
  explicit SrgIndex(const RoutingTable& table);
  explicit SrgIndex(const MultiRouteTable& table);

  std::size_t num_nodes() const { return n_; }
  /// Directed routes preprocessed (multiroute tables count every parallel
  /// route; ordered pairs may share one arc).
  std::size_t num_routes() const { return route_src_.size(); }
  std::size_t num_pairs() const { return num_pairs_; }

  /// Heap footprint of the preprocessing arrays (capacities), for
  /// byte-accounted caches like the serving layer's table registry.
  std::size_t memory_bytes() const;

 private:
  friend class SrgScratch;
  friend struct SnapshotAccess;  // binary snapshot save/load (serialization)

  SrgIndex() = default;  // snapshot loads fill the arrays directly

  void finalize_routes();

  // All flat arrays: owned vectors when built from a table, aliases into a
  // mapped snapshot on the zero-copy load path (the index never mutates
  // after construction either way).
  std::size_t n_ = 0;
  FlatArray<Node> route_nodes_;           // all route nodes, back to back
  FlatArray<std::uint32_t> route_off_;    // per route, offset into nodes
  FlatArray<Node> route_src_;
  FlatArray<Node> route_dst_;
  FlatArray<std::uint32_t> route_pair_;   // route -> ordered-pair id
  std::size_t num_pairs_ = 0;
  FlatArray<Node> pair_src_;              // ordered-pair id -> endpoints
  FlatArray<Node> pair_dst_;
  FlatArray<std::uint32_t> pair_route_count_;  // routes per ordered pair
  FlatArray<std::uint32_t> node_route_off_;  // node -> routes through it
  FlatArray<std::uint32_t> node_route_ids_;

  // Packed-kernel support. Routes of one ordered pair occupy a contiguous
  // route-id range (both table constructors emit them that way; finalize
  // asserts it), so a pair's routes are [pair_route_off_[p],
  // pair_route_off_[p + 1]). src_pair_* lists the ordered pairs by source
  // node — the adjacency the lane-parallel BFS walks, since in packed mode
  // "arc" and "pair with a live route" coincide.
  FlatArray<std::uint32_t> pair_route_off_;  // pair -> first route id
  FlatArray<std::uint32_t> src_pair_off_;    // node -> pairs sourced at it
  FlatArray<std::uint32_t> src_pair_ids_;
};

/// Per-worker mutable state for fault-set evaluation against a shared
/// SrgIndex. NOT thread-safe itself — each thread owns one scratch; the
/// index it references must outlive it.
class SrgScratch {
 public:
  explicit SrgScratch(const SrgIndex& index);

  const SrgIndex& index() const { return *index_; }
  std::size_t num_nodes() const { return index_->num_nodes(); }

  /// Selects the BFS kernel for evaluate()/evaluate_incremental()/
  /// componentwise_diameter(). kAuto and kPacked run single-set evaluations
  /// on the bitset kernel (packed only applies to evaluate_gray_block()).
  /// Takes effect immediately on the full-rebuild path; the incremental
  /// path latches "maintain bitmaps?" at begin_incremental(), so switching
  /// scalar -> bitset mid-walk keeps evaluating scalar until the next
  /// begin_incremental() (results are identical either way).
  void set_kernel(SrgKernel kernel) { kernel_ = kernel; }
  SrgKernel kernel() const { return kernel_; }

  /// Requests a packed lane width: 0 (the default) resolves at first use
  /// via ftr::resolve_lane_width() — FTROUTE_FORCE_LANE_WIDTH, then the
  /// widest width the CPU supports; 64/128/256/512 force that width.
  /// Only evaluate_gray_block() throughput is affected — results are
  /// bit-identical at every width. Changing the width mid-stream is legal
  /// between blocks (the packed state is re-sized lazily).
  void set_lane_width(unsigned lanes);

  /// The resolved lanes-per-block (64/128/256/512) the next
  /// evaluate_gray_block() call will use; resolves kAuto on first call.
  unsigned lane_width();

  struct Result {
    std::uint32_t diameter = 0;  // kUnreachable if some pair cannot route
    std::uint32_t survivors = 0;
    std::uint32_t arcs = 0;
  };

  /// Evaluates one fault set. Repeated calls reuse all scratch state; fault
  /// ids must be < num_nodes() (duplicates are tolerated).
  Result evaluate(std::span<const Node> faults);

  /// Strikes the fault set and reports survivors/arcs WITHOUT measuring the
  /// diameter (left 0) — the kill-index application alone. Benchmarks use
  /// this to time the phase the incremental mode replaces.
  Result apply(std::span<const Node> faults);

  /// diam R(G, rho)/F — the batched counterpart of ftr::surviving_diameter.
  std::uint32_t surviving_diameter(std::span<const Node> faults);

  /// Worst finite surviving-route distance over ordered survivor pairs that
  /// share a class in `comp` (one id per node of the underlying graph);
  /// kUnreachable if some same-class pair cannot route. Used by the
  /// componentwise recovery metric (Section 7, open problem 3).
  std::uint32_t componentwise_diameter(std::span<const Node> faults,
                                       std::span<const std::uint32_t> comp);

  /// Materializes the surviving route graph as a Digraph, for callers that
  /// need the full structure (property checks, delivery simulation).
  Digraph surviving_graph(std::span<const Node> faults);

  /// Materializes the Digraph for the most recently struck fault set
  /// without re-striking — for pipelines that already called evaluate() on
  /// that set. At least one evaluation must have happened since
  /// construction or reset().
  Digraph last_surviving_graph() const;

  // --- incremental (Gray) mode ---------------------------------------------
  // For enumerations that visit fault sets by one-element deltas. The mode
  // keeps its own exact-count state, fully independent of the epoch-stamped
  // full-rebuild path above: interleaving evaluate() calls neither corrupts
  // nor is corrupted by it. All incremental state is (re)built by
  // begin_incremental().

  /// Enters incremental mode with `faults` as the current fault set
  /// (ids < num_nodes(), duplicates rejected by contract). Cost is one
  /// O(routes + pairs) re-initialization plus one strike per fault —
  /// amortize it over a chunk of delta steps.
  void begin_incremental(std::span<const Node> faults);

  bool incremental_active() const { return inc_active_; }

  /// Adds fault v to the current set in O(routes through v). v must not be
  /// faulty already.
  void strike(Node v);

  /// Removes fault v from the current set in O(routes through v). v must be
  /// faulty.
  void unstrike(Node v);

  /// Survivor / surviving-arc counts of the current incremental fault set,
  /// maintained by the deltas (no recomputation).
  std::uint32_t incremental_survivors() const { return inc_survivors_; }
  std::uint32_t incremental_arcs() const { return inc_arcs_; }

  /// Full Result (diameter via BFS over the maintained live arcs) for the
  /// current incremental fault set. Identical to evaluate() on that set.
  Result evaluate_incremental();

  /// Materializes the surviving route graph of the current incremental
  /// fault set, with arcs in the same canonical (route-id) order as
  /// last_surviving_graph() — so downstream order-sensitive consumers
  /// (delivery simulation) see bit-identical graphs on both paths.
  Digraph incremental_surviving_graph() const;

  // --- packed wide-lane Gray mode ------------------------------------------

  /// Evaluates `count` (1..lane_width()) CONSECUTIVE revolving-door fault
  /// sets in one bit-parallel pass: out[i] is exactly what evaluate() would
  /// return on the i-th set. The enumerator must be positioned on the first
  /// set of the block over this index's node universe; the call advances it
  /// by count - 1 steps (so the caller advances once more between blocks).
  /// Independent of both the epoch-stamped and the incremental state —
  /// interleaving is safe. Runs the packed kernel regardless of
  /// set_kernel(); callers gate on it.
  void evaluate_gray_block(GraySubsetEnumerator& e, std::size_t count,
                           Result* out);

  /// Zeroes every stamp array and restarts both epoch counters. Evaluation
  /// results never depend on it (the wrap paths below do the same lazily);
  /// exposed so long-lived servers can re-zero scratch at a quiet moment
  /// instead of inside a request.
  void reset();

  /// Test hook for the 2^32 epoch wraparound: plants both counters just
  /// below `epoch` so a handful of evaluations crosses the wrap. Stamps are
  /// re-zeroed, so behavior stays exactly as after reset().
  void set_epochs_for_testing(std::uint32_t epoch);

 private:
  // Stamps faults/killed routes and rebuilds the scratch arc CSR for this
  // fault set. Returns the number of survivors.
  std::uint32_t strike(std::span<const Node> faults);
  // BFS from s over the scratch CSR; returns the eccentricity among reached
  // survivors and leaves dist/seen stamps for this bfs_epoch_.
  std::uint32_t bfs_from(Node s, std::uint32_t* reached_out);

  // The kernel single-set evaluations actually run (kAuto/kPacked -> bitset).
  SrgKernel single_set_kernel() const {
    return kernel_ == SrgKernel::kScalar ? SrgKernel::kScalar
                                         : SrgKernel::kBitset;
  }
  // (Re)builds succ/pred/alive bitmaps from the current epoch's arcs_ —
  // the bitset kernel's view of the full-rebuild path. Lazy and gated on
  // the kernel so the scalar oracle never pays for it.
  void ensure_bits();
  // Direction-optimizing bitset BFS over the given n*words_ succ/pred rows
  // and alive mask. Returns the eccentricity among reached survivors,
  // stores the reached count, and leaves visited_bits_ (and dist_, when
  // fill_dist) describing the traversal.
  std::uint32_t bfs_from_bits(const std::uint64_t* succ,
                              const std::uint64_t* pred,
                              const std::uint64_t* alive,
                              std::uint32_t survivors, Node s,
                              std::uint32_t* reached_out, bool fill_dist);
  // Shared diameter loop over all surviving sources for the bitset kernel;
  // `faulty(v)` must match the path's notion of "currently faulty".
  template <typename FaultyFn>
  std::uint32_t bitset_diameter(const std::uint64_t* succ,
                                const std::uint64_t* pred,
                                const std::uint64_t* alive,
                                std::uint32_t survivors, FaultyFn&& faulty);
  void ensure_packed_state();

  const SrgIndex* index_;
  SrgKernel kernel_ = SrgKernel::kAuto;

  std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> fault_stamp_;
  std::vector<std::uint32_t> route_stamp_;
  std::vector<std::uint32_t> pair_stamp_;
  std::vector<std::pair<Node, Node>> arcs_;
  std::vector<std::uint32_t> arc_off_;     // scratch CSR offsets (n + 1)
  std::vector<std::uint32_t> arc_cursor_;
  std::vector<Node> arc_tgt_;

  std::uint32_t bfs_epoch_ = 0;
  std::vector<std::uint32_t> seen_stamp_;
  std::vector<std::uint32_t> dist_;
  std::vector<Node> queue_;

  // Bitset-kernel state. words_ = ceil(n / 64); succ/pred rows are n *
  // words_ bitmaps. The full-rebuild bitmaps (succ_bits_ etc.) are rebuilt
  // lazily per strike; the inc_* bitmaps mirror the incremental adjacency
  // and are maintained O(delta) when inc_bits_active_.
  std::size_t words_ = 0;
  bool bits_valid_ = false;
  std::vector<std::uint64_t> succ_bits_;      // n * words_ (lazy)
  std::vector<std::uint64_t> pred_bits_;      // n * words_ (lazy)
  std::vector<std::uint64_t> alive_bits_;     // words_
  bool inc_bits_active_ = false;
  std::vector<std::uint64_t> inc_succ_bits_;  // n * words_
  std::vector<std::uint64_t> inc_pred_bits_;  // n * words_
  std::vector<std::uint64_t> inc_alive_bits_;
  std::vector<std::uint64_t> visited_bits_;   // words_, per BFS
  std::vector<std::uint64_t> frontier_bits_;  // words_
  std::vector<std::uint64_t> next_bits_;      // words_

  // Packed-kernel state (lazy; pk_words_ uint64_t of lanes per node/route/
  // pair — entity i owns words [i*W, (i+1)*W)). The mask arrays are all-
  // zero between blocks (the kernel's sparse cleanup restores that), so a
  // width change only needs a re-size. pk_fn_ is the runtime-dispatched
  // block body (portable/AVX2/AVX-512) for the resolved width.
  unsigned pk_requested_lanes_ = 0;  // set_lane_width() request; 0 = auto
  unsigned pk_lanes_ = 0;            // resolved lanes per block; 0 = not yet
  unsigned pk_words_ = 0;            // pk_lanes_ / 64, once sized
  packed::PackedBlockFn pk_fn_ = nullptr;
  std::vector<std::uint64_t> lane_node_mask_;  // node -> lanes where faulty
  std::vector<Node> lane_touched_;
  std::vector<std::uint64_t> route_kill_mask_;  // route -> lanes killed
  std::vector<std::uint32_t> pk_dirty_routes_;
  std::vector<std::uint64_t> pair_dead_mask_;  // pair -> lanes with 0 routes
  std::vector<std::uint8_t> pair_dirty_;
  std::vector<std::uint32_t> pk_dirty_pairs_;
  std::vector<std::uint64_t> pk_visited_;   // node -> lanes reached
  std::vector<std::uint64_t> pk_new_;       // node -> lanes newly reached
  std::vector<std::uint64_t> pk_next_mask_;
  std::vector<Node> pk_frontier_;
  std::vector<Node> pk_next_;
  std::vector<Node> pk_members_;  // current fault set during the lane walk
  std::vector<std::uint32_t> pk_dead_pairs_;    // per-lane outputs (64*W)
  std::vector<std::uint32_t> pk_diam_;          // 64*W
  std::vector<std::uint32_t> pk_ecc_;           // 64*W BFS scratch
  std::vector<std::uint64_t> pk_disconnected_;  // W words

  // Incremental-mode state: exact counts plus a per-source live-arc
  // adjacency. inc_slot_ records each live pair's position in its source
  // list so removal is a swap-with-back.
  void inc_add_arc(std::uint32_t pair);
  void inc_remove_arc(std::uint32_t pair);
  std::uint32_t bfs_from_inc(Node s, std::uint32_t* reached_out);

  struct IncArc {
    Node dst;
    std::uint32_t pair;
  };
  bool inc_active_ = false;
  std::vector<std::uint8_t> inc_fault_;        // node -> currently faulty?
  std::vector<std::uint32_t> inc_route_kill_;  // route -> #faults on it
  std::vector<std::uint32_t> inc_pair_live_;   // pair -> #live routes
  std::vector<std::vector<IncArc>> inc_adj_;   // src -> live arcs
  std::vector<std::uint32_t> inc_slot_;        // pair -> index in src list
  mutable std::vector<std::uint8_t> inc_emitted_;  // materialization scratch
  std::uint32_t inc_survivors_ = 0;
  std::uint32_t inc_arcs_ = 0;
};

/// Single-threaded batching facade: one shared, immutable SrgIndex plus one
/// SrgScratch. Existing call sites use this directly; parallel sweeps grab
/// index() and give each worker its own SrgScratch.
class SurvivingRouteGraphEngine {
 public:
  explicit SurvivingRouteGraphEngine(const RoutingTable& table)
      : index_(std::make_shared<const SrgIndex>(table)), scratch_(*index_) {}
  explicit SurvivingRouteGraphEngine(const MultiRouteTable& table)
      : index_(std::make_shared<const SrgIndex>(table)), scratch_(*index_) {}

  using Result = SrgScratch::Result;

  std::size_t num_nodes() const { return index_->num_nodes(); }
  std::size_t num_routes() const { return index_->num_routes(); }
  std::size_t num_pairs() const { return index_->num_pairs(); }

  /// The shared preprocessing; hand this to parallel sweep workers (one
  /// SrgScratch each) so one table preprocessing serves N threads.
  const std::shared_ptr<const SrgIndex>& index() const { return index_; }

  /// The facade's own scratch, for callers that interleave engine use with
  /// scratch-level calls.
  SrgScratch& scratch() { return scratch_; }

  Result evaluate(std::span<const Node> faults) {
    return scratch_.evaluate(faults);
  }
  std::uint32_t surviving_diameter(std::span<const Node> faults) {
    return scratch_.surviving_diameter(faults);
  }
  std::uint32_t componentwise_diameter(std::span<const Node> faults,
                                       std::span<const std::uint32_t> comp) {
    return scratch_.componentwise_diameter(faults, comp);
  }
  Digraph surviving_graph(std::span<const Node> faults) {
    return scratch_.surviving_graph(faults);
  }

 private:
  std::shared_ptr<const SrgIndex> index_;
  SrgScratch scratch_;
};

}  // namespace ftr
