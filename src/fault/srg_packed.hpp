// Width-parameterized packed SRG block kernel: dispatch surface.
//
// The packed kernel evaluates up to 64*W Gray-adjacent fault sets per
// call, W words (LaneBlock<W>) per node/route/pair. Its body is a
// single width template (srg_packed_impl.hpp) compiled THREE times into
// separate translation units with different ISA flags:
//
//   srg_packed_portable.cpp  — baseline flags; the word loops
//                              auto-vectorize to whatever the build's
//                              global -m flags allow.
//   srg_packed_avx2.cpp      — compiled with -mavx2 when the toolchain
//                              has it; explicit 256-bit paths light up.
//   srg_packed_avx512.cpp    — likewise with -mavx512f.
//
// Each TU keeps its instantiations in an anonymous namespace (so the
// linker can never ODR-merge portable and AVX codegen) and exports only
// the three lookup functions below, which return a plain function
// pointer — or nullptr when the TU was compiled without its ISA.
// select_block_fn() is the runtime chooser: strongest ISA the cpuid
// probe reports, falling back to portable. Callers (SrgScratch) hold
// the chosen pointer; every implementation is bit-identical, so the
// choice never affects results.
//
// PackedCtx is deliberately a POD of raw pointers/sizes: it is the only
// type that crosses the ISA TU boundary, so it must not drag any
// inline-code dependencies (vectors, FlatArray, contracts) into the
// AVX-compiled units.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ftr::packed {

/// Everything one block evaluation reads and writes. Index arrays are
/// the immutable SrgIndex views; scratch arrays are W-strided (entity i
/// occupies words [i*W, (i+1)*W)) and must arrive zero outside the
/// footprint the kernel is about to write — the kernel sparsely re-zeros
/// everything it touched before returning, preserving that invariant.
struct PackedCtx {
  // Immutable index views.
  std::size_t n = 0;          // nodes
  std::size_t num_pairs = 0;  // ordered pairs with >= 1 route
  const std::uint32_t* node_route_off = nullptr;  // n + 1
  const std::uint32_t* node_route_ids = nullptr;
  const std::uint32_t* route_pair = nullptr;      // route -> pair id
  const std::uint32_t* pair_route_off = nullptr;  // pair -> route range
  const std::uint32_t* pair_dst = nullptr;        // pair -> target node
  const std::uint32_t* src_pair_off = nullptr;    // node -> pair range
  const std::uint32_t* src_pair_ids = nullptr;

  // W-strided lane masks (scratch).
  std::uint64_t* lane_node_mask = nullptr;   // n*W; prefilled by caller
  std::uint64_t* route_kill_mask = nullptr;  // routes*W
  std::uint64_t* pair_dead_mask = nullptr;   // pairs*W
  std::uint8_t* pair_dirty = nullptr;        // pairs
  std::uint64_t* visited = nullptr;          // n*W
  std::uint64_t* new_mask = nullptr;         // n*W
  std::uint64_t* next_mask = nullptr;        // n*W

  // Worklists (capacities guaranteed by the caller).
  const std::uint32_t* lane_touched = nullptr;  // nodes with faulty lanes
  std::size_t lane_touched_count = 0;
  std::uint32_t* dirty_routes = nullptr;  // capacity: num routes
  std::uint32_t* dirty_pairs = nullptr;   // capacity: num_pairs
  std::uint32_t* frontier = nullptr;      // capacity: n
  std::uint32_t* next = nullptr;          // capacity: n

  // Per-lane outputs, zeroed by the kernel. dead_pairs[l] counts pairs
  // with no live route in lane l; diam[l] is the max finite
  // eccentricity; disconnected has lane l set when some survivor pair
  // is unreachable there. ecc is per-source BFS scratch.
  std::uint32_t* dead_pairs = nullptr;    // 64*W
  std::uint32_t* diam = nullptr;          // 64*W
  std::uint32_t* ecc = nullptr;           // 64*W (scratch)
  std::uint64_t* disconnected = nullptr;  // W
};

/// Runs one block: `count` lanes (1..64*W), `survivors` = n - f.
using PackedBlockFn = void (*)(const PackedCtx& ctx, std::size_t count,
                               std::uint32_t survivors);

/// Per-TU lookups: the TU's implementation for W = `words` (1/2/4/8),
/// or nullptr when that TU was compiled without its ISA.
PackedBlockFn packed_block_fn_portable(unsigned words);
PackedBlockFn packed_block_fn_avx2(unsigned words);
PackedBlockFn packed_block_fn_avx512(unsigned words);

/// Strongest implementation the running CPU supports for W = `words`.
/// Never nullptr for valid `words`.
PackedBlockFn select_block_fn(unsigned words);

}  // namespace ftr::packed
