// The surviving route graph R(G, rho)/F (paper Section 2): all non-faulty
// nodes, with an arc x -> y iff rho(x, y) exists and no node of the route is
// faulty. For multiroutings the arc exists iff at least one of the pair's
// routes survives.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/graph.hpp"
#include "routing/multi_route_table.hpp"
#include "routing/route_table.hpp"

namespace ftr {

/// Builds R(G, rho)/F for a single-route table.
Digraph surviving_graph(const RoutingTable& table,
                        const std::vector<Node>& faults);

/// Builds R(G, rho)/F for a multiroute table.
Digraph surviving_graph(const MultiRouteTable& table,
                        const std::vector<Node>& faults);

/// diam R(G, rho)/F; kUnreachable if some ordered pair of survivors cannot
/// reach each other through surviving routes.
std::uint32_t surviving_diameter(const RoutingTable& table,
                                 const std::vector<Node>& faults);

std::uint32_t surviving_diameter(const MultiRouteTable& table,
                                 const std::vector<Node>& faults);

}  // namespace ftr
