#include "fault/tolerance_check.hpp"

#include <memory>
#include <sstream>
#include <utility>

#include "common/combinatorics.hpp"
#include "common/contracts.hpp"
#include "fault/fault_gen.hpp"
#include "fault/srg_engine.hpp"
#include "graph/bfs.hpp"

namespace ftr {

std::string ToleranceReport::summary() const {
  std::ostringstream os;
  os << "f=" << faults << " claimed<=" << claimed_bound << " measured=";
  if (worst_diameter == kUnreachable) {
    os << "disconnected";
  } else {
    os << worst_diameter;
  }
  os << (exhaustive ? " (exhaustive, " : " (adversarial, ")
     << fault_sets_checked << " sets) " << (holds ? "HOLDS" : "VIOLATED");
  return os.str();
}

ToleranceReport check_tolerance_with(std::size_t n,
                                     const FaultEvaluatorFactory& make_eval,
                                     std::uint32_t f,
                                     std::uint32_t claimed_bound,
                                     std::uint64_t seed,
                                     const ToleranceCheckOptions& options) {
  ToleranceReport report;
  report.claimed_bound = claimed_bound;
  report.faults = f;
  const SearchExecution exec{options.exec};

  if (binomial(n, f) <= options.exhaustive_budget) {
    const AdversaryResult r = exhaustive_worst_faults(n, f, make_eval, exec);
    report.worst_diameter = r.worst_diameter;
    report.worst_faults = r.worst_faults;
    report.fault_sets_checked = r.evaluations;
    report.exhaustive = true;
  } else {
    // Independent stream roots for the two search phases, both derived from
    // the one seed so the whole report is a pure function of it.
    const std::uint64_t sampled_seed = Rng::stream(seed, 1)();
    const std::uint64_t climb_seed = Rng::stream(seed, 2)();
    AdversaryResult best = sampled_worst_faults(n, f, options.samples,
                                                make_eval, sampled_seed, exec);
    AdversaryResult climbed = hillclimb_worst_faults(
        n, f, make_eval, climb_seed, exec, options.hillclimb_restarts,
        options.hillclimb_steps, options.seeds);
    if (climbed.worst_diameter > best.worst_diameter) {
      best.worst_diameter = climbed.worst_diameter;
      best.worst_faults = std::move(climbed.worst_faults);
    }
    best.evaluations += climbed.evaluations;
    report.worst_diameter = best.worst_diameter;
    report.worst_faults = std::move(best.worst_faults);
    report.fault_sets_checked = best.evaluations;
    report.exhaustive = false;
  }
  report.holds = report.worst_diameter <= claimed_bound;
  return report;
}

ToleranceReport check_tolerance_with(std::size_t n, const FaultEvaluator& eval,
                                     std::uint32_t f,
                                     std::uint32_t claimed_bound, Rng& rng,
                                     const ToleranceCheckOptions& options) {
  // A lone evaluator may own scratch, so never share it across workers.
  ToleranceCheckOptions serial = options;
  serial.exec.threads = 1;
  const FaultEvaluatorFactory make_eval = [&eval]() { return eval; };
  return check_tolerance_with(n, make_eval, f, claimed_bound, rng(), serial);
}

namespace {

// One shared preprocessing, one scratch per worker chunk: the canonical
// parallel-sweep evaluator.
FaultEvaluatorFactory engine_evaluator_factory(
    const std::shared_ptr<const SrgIndex>& index, SrgKernel kernel) {
  return [index, kernel]() {
    auto scratch = std::make_shared<SrgScratch>(*index);
    scratch->set_kernel(kernel);
    return [index, scratch](const std::vector<Node>& faults) {
      return scratch->surviving_diameter(faults);
    };
  };
}

// Exhaustive verification of small fault budgets goes through the
// revolving-door fast path: Gray-order enumeration with O(delta)
// strike/unstrike per set against the shared index. Beyond f = 3 the
// one-element deltas no longer dominate the per-set cost, so the generic
// chunked lexicographic scan keeps that territory.
constexpr std::uint32_t kGrayFastPathMaxFaults = 3;

// The index-level check: gray fast path when the budget allows exhausting
// f <= 3, otherwise the sampled + hill-climbing adversary via the evaluator
// factory. The index is a handle so worker evaluators can co-own it.
ToleranceReport check_tolerance_index(const std::shared_ptr<const SrgIndex>& index,
                                      std::uint32_t f,
                                      std::uint32_t claimed_bound,
                                      std::uint64_t seed,
                                      const ToleranceCheckOptions& options) {
  const std::size_t n = index->num_nodes();
  if (f <= kGrayFastPathMaxFaults && f <= n &&
      binomial(n, f) <= options.exhaustive_budget) {
    ToleranceReport report;
    report.claimed_bound = claimed_bound;
    report.faults = f;
    const AdversaryResult r =
        exhaustive_worst_faults_gray(*index, f, SearchExecution{options.exec});
    report.worst_diameter = r.worst_diameter;
    report.worst_faults = r.worst_faults;
    report.fault_sets_checked = r.evaluations;
    report.exhaustive = true;
    report.holds = report.worst_diameter <= claimed_bound;
    return report;
  }
  return check_tolerance_with(n,
                              engine_evaluator_factory(index, options.exec.kernel),
                              f, claimed_bound, seed, options);
}

// Route-load-targeted hill-climber seeds: knocking out the busiest nodes
// first is the natural informed attack. Applied for single-route tables
// only (matching the historical behavior of the table-level overloads).
ToleranceCheckOptions with_route_load_seeds(const RoutingTable& table,
                                            std::uint32_t f,
                                            const ToleranceCheckOptions& options) {
  ToleranceCheckOptions opts = options;
  if (opts.seeds.empty() && f > 0 && f <= table.num_nodes()) {
    const auto ranked = nodes_by_route_load(table);
    std::vector<Node> top(ranked.begin(), ranked.begin() + f);
    opts.seeds.push_back(std::move(top));
  }
  return opts;
}

}  // namespace

ToleranceReport check_tolerance(const RoutingTable& table,
                                const std::shared_ptr<const SrgIndex>& index,
                                std::uint32_t f, std::uint32_t claimed_bound,
                                Rng& rng, const ToleranceCheckOptions& options) {
  FTR_EXPECTS(index != nullptr);
  FTR_EXPECTS(index->num_nodes() == table.num_nodes());
  return check_tolerance_index(index, f, claimed_bound, rng(),
                               with_route_load_seeds(table, f, options));
}

ToleranceReport check_tolerance(const MultiRouteTable& table,
                                const std::shared_ptr<const SrgIndex>& index,
                                std::uint32_t f, std::uint32_t claimed_bound,
                                Rng& rng, const ToleranceCheckOptions& options) {
  FTR_EXPECTS(index != nullptr);
  FTR_EXPECTS(index->num_nodes() == table.num_nodes());
  return check_tolerance_index(index, f, claimed_bound, rng(), options);
}

ToleranceReport check_tolerance(const RoutingTable& table, std::uint32_t f,
                                std::uint32_t claimed_bound, Rng& rng,
                                const ToleranceCheckOptions& options) {
  return check_tolerance(table, std::make_shared<const SrgIndex>(table), f,
                         claimed_bound, rng, options);
}

ToleranceReport check_tolerance(const MultiRouteTable& table, std::uint32_t f,
                                std::uint32_t claimed_bound, Rng& rng,
                                const ToleranceCheckOptions& options) {
  return check_tolerance(table, std::make_shared<const SrgIndex>(table), f,
                         claimed_bound, rng, options);
}

}  // namespace ftr
