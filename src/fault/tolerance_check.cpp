#include "fault/tolerance_check.hpp"

#include <sstream>

#include "common/combinatorics.hpp"
#include "common/contracts.hpp"
#include "fault/fault_gen.hpp"
#include "fault/srg_engine.hpp"
#include "graph/bfs.hpp"

namespace ftr {

std::string ToleranceReport::summary() const {
  std::ostringstream os;
  os << "f=" << faults << " claimed<=" << claimed_bound << " measured=";
  if (worst_diameter == kUnreachable) {
    os << "disconnected";
  } else {
    os << worst_diameter;
  }
  os << (exhaustive ? " (exhaustive, " : " (adversarial, ")
     << fault_sets_checked << " sets) " << (holds ? "HOLDS" : "VIOLATED");
  return os.str();
}

ToleranceReport check_tolerance_with(std::size_t n, const FaultEvaluator& eval,
                                     std::uint32_t f,
                                     std::uint32_t claimed_bound, Rng& rng,
                                     const ToleranceCheckOptions& options) {
  ToleranceReport report;
  report.claimed_bound = claimed_bound;
  report.faults = f;

  if (binomial(n, f) <= options.exhaustive_budget) {
    const AdversaryResult r = exhaustive_worst_faults(n, f, eval);
    report.worst_diameter = r.worst_diameter;
    report.worst_faults = r.worst_faults;
    report.fault_sets_checked = r.evaluations;
    report.exhaustive = true;
  } else {
    AdversaryResult best =
        sampled_worst_faults(n, f, options.samples, eval, rng);
    AdversaryResult climbed = hillclimb_worst_faults(
        n, f, eval, rng, options.hillclimb_restarts, options.hillclimb_steps,
        options.seeds);
    if (climbed.worst_diameter > best.worst_diameter) {
      best.worst_diameter = climbed.worst_diameter;
      best.worst_faults = std::move(climbed.worst_faults);
    }
    best.evaluations += climbed.evaluations;
    report.worst_diameter = best.worst_diameter;
    report.worst_faults = std::move(best.worst_faults);
    report.fault_sets_checked = best.evaluations;
    report.exhaustive = false;
  }
  report.holds = report.worst_diameter <= claimed_bound;
  return report;
}

ToleranceReport check_tolerance(const RoutingTable& table, std::uint32_t f,
                                std::uint32_t claimed_bound, Rng& rng,
                                const ToleranceCheckOptions& options) {
  // One engine per check: the preprocessing cost amortizes across the
  // thousands of fault sets the adversary evaluates below.
  SurvivingRouteGraphEngine engine(table);
  const FaultEvaluator eval = [&engine](const std::vector<Node>& faults) {
    return engine.surviving_diameter(faults);
  };
  // Seed the hill-climber with route-load-targeted sets: knocking out the
  // busiest nodes first is the natural informed attack.
  ToleranceCheckOptions opts = options;
  if (opts.seeds.empty() && f > 0 && f <= table.num_nodes()) {
    const auto ranked = nodes_by_route_load(table);
    std::vector<Node> top(ranked.begin(), ranked.begin() + f);
    opts.seeds.push_back(std::move(top));
  }
  return check_tolerance_with(table.num_nodes(), eval, f, claimed_bound, rng,
                              opts);
}

ToleranceReport check_tolerance(const MultiRouteTable& table, std::uint32_t f,
                                std::uint32_t claimed_bound, Rng& rng,
                                const ToleranceCheckOptions& options) {
  SurvivingRouteGraphEngine engine(table);
  const FaultEvaluator eval = [&engine](const std::vector<Node>& faults) {
    return engine.surviving_diameter(faults);
  };
  return check_tolerance_with(table.num_nodes(), eval, f, claimed_bound, rng,
                              options);
}

}  // namespace ftr
