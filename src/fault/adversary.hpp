// Worst-case fault search. The paper's (d, f)-tolerance quantifies over ALL
// fault sets of size <= f; we reproduce that with
//  * exhaustive enumeration when C(n, f) fits a budget (ground truth),
//  * randomized sampling plus hill-climbing local search otherwise
//    (1-swap neighborhood, restarts seeded uniformly and by route load).
//
// The searchers are generic over an evaluation callback so they work for
// single-route tables, multiroute tables, and any future routing flavor.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace ftr {

/// Maps a fault set to the diameter of the surviving route graph.
using FaultEvaluator = std::function<std::uint32_t(const std::vector<Node>&)>;

struct AdversaryResult {
  std::vector<Node> worst_faults;
  std::uint32_t worst_diameter = 0;
  std::uint64_t evaluations = 0;
  bool exhaustive = false;
};

/// Ground truth: evaluates every f-subset of {0..n-1}. `stop_above`, if
/// nonzero, aborts early once a fault set exceeding that diameter is found
/// (useful to falsify a claimed bound quickly).
AdversaryResult exhaustive_worst_faults(std::size_t n, std::size_t f,
                                        const FaultEvaluator& eval,
                                        std::uint32_t stop_above = 0);

/// Uniform random sampling of `samples` fault sets.
AdversaryResult sampled_worst_faults(std::size_t n, std::size_t f,
                                     std::size_t samples,
                                     const FaultEvaluator& eval, Rng& rng);

/// Hill-climbing: from each start set, repeatedly try swapping one fault for
/// one non-fault, keeping strict improvements, until no swap helps or the
/// step budget runs out. `seeds` provides informed starting points (e.g.
/// concentrator members); uniform restarts fill the rest.
AdversaryResult hillclimb_worst_faults(std::size_t n, std::size_t f,
                                       const FaultEvaluator& eval, Rng& rng,
                                       std::size_t restarts = 8,
                                       std::size_t max_steps = 64,
                                       const std::vector<std::vector<Node>>& seeds = {});

}  // namespace ftr
