// Worst-case fault search. The paper's (d, f)-tolerance quantifies over ALL
// fault sets of size <= f; we reproduce that with
//  * exhaustive enumeration when C(n, f) fits a budget (ground truth),
//  * randomized sampling plus hill-climbing local search otherwise
//    (1-swap neighborhood, restarts seeded uniformly and by route load).
//
// The searchers are generic over an evaluation callback so they work for
// single-route tables, multiroute tables, and any future routing flavor.
//
// Each searcher has two forms:
//  * the single-evaluator form — one FaultEvaluator, scanned serially
//    (unchanged from the original API);
//  * the factory form — a FaultEvaluatorFactory that mints one evaluator
//    per worker chunk, fanned across SearchExecution::threads. Work is
//    split deterministically (subset-rank ranges, sample indices, restart
//    indices) and merged in index order with the serial tie-breaking rule
//    (first set reaching the max wins), and randomized searchers draw from
//    counter-based Rng streams keyed by task index — so the result,
//    including the reported witness and evaluation count, is bit-identical
//    for ANY thread count, and equal to a serial scan.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "fault/srg_engine.hpp"
#include "graph/graph.hpp"

namespace ftr {

/// Maps a fault set to the diameter of the surviving route graph.
using FaultEvaluator = std::function<std::uint32_t(const std::vector<Node>&)>;

/// Mints a fresh evaluator for one worker chunk. Each returned evaluator is
/// used from exactly one thread at a time, so it may own mutable scratch
/// (an SrgScratch over a shared SrgIndex is the canonical instance).
using FaultEvaluatorFactory = std::function<FaultEvaluator()>;

/// Execution knobs for the factory-form searchers: a plain composition of
/// the repo-wide ExecPolicy (see common/exec_policy.hpp for the resolution
/// rules). threads fans chunks across workers; kernel/lanes drive the
/// searchers that own their scratches (exhaustive_worst_faults_gray —
/// factory-form searchers bake the kernel into their evaluators instead);
/// batch_size/progress_every are unused by the searchers. Results never
/// depend on any of it.
struct SearchExecution {
  ExecPolicy exec;
};

struct AdversaryResult {
  std::vector<Node> worst_faults;
  std::uint32_t worst_diameter = 0;
  std::uint64_t evaluations = 0;
  bool exhaustive = false;
  /// Executor telemetry from the factory-form searchers (zeros on the
  /// serial forms). Scheduling-dependent — unlike every field above, this
  /// is NOT bit-identical across runs; it exists for stderr probes.
  ExecutorStats executor;
};

/// A mergeable fragment of an adversary search over one ordered slice of
/// the task space (subset ranks, sample indices, restart indices). This is
/// the merge authority shared by the in-process chunked scans and the
/// distributed coordinator: both fold slices with merge_adversary_partials,
/// so the two paths cannot drift.
struct AdvPartial {
  std::uint32_t d = 0;          // worst diameter seen in this slice
  std::vector<Node> faults;     // its witness
  std::uint64_t evaluations = 0;
  bool any = false;             // a candidate has been recorded
  bool stopped = false;         // this slice hit its early-stop condition
};

/// Folds `next` into `into` with the serial scan's semantics. PRECONDITION:
/// `next` covers task indices strictly after everything already folded into
/// `into`. If `into` has stopped, `next` is discarded entirely — its
/// evaluations are NOT counted, reproducing the serial early break (work
/// past the stop point never happened). Otherwise evaluations add, a
/// strictly greater diameter replaces the witness (equal keeps the earlier
/// slice's, the serial tie-break), and next's stop propagates. Under the
/// index-order discipline this is associative: any contiguous partition of
/// the task space — threads, chunks, worker processes — folds to the same
/// result.
void merge_adversary_partials(AdvPartial& into, const AdvPartial& next);

/// Ground truth: evaluates every f-subset of {0..n-1}. `stop_above`, if
/// nonzero, aborts early once a fault set exceeding that diameter is found
/// (useful to falsify a claimed bound quickly).
AdversaryResult exhaustive_worst_faults(std::size_t n, std::size_t f,
                                        const FaultEvaluator& eval,
                                        std::uint32_t stop_above = 0);

/// Parallel ground truth: chunks the lexicographic subset enumeration into
/// rank ranges. The merged result (witness, diameter, evaluation count,
/// early-stop behavior) is identical to the serial scan: chunks are merged
/// in rank order and everything after the first early-stopped chunk is
/// discarded, un-counted.
AdversaryResult exhaustive_worst_faults(std::size_t n, std::size_t f,
                                        const FaultEvaluatorFactory& make_eval,
                                        const SearchExecution& exec,
                                        std::uint32_t stop_above = 0);

/// Ground truth over an SrgIndex via the revolving-door fast path: fault
/// sets are enumerated in Gray order and each worker applies one
/// strike/unstrike delta per set against its incremental kill index instead
/// of rebuilding it — the f <= 3 certification fast path behind
/// check_tolerance/build_certified_routing. Same chunked merge discipline
/// as the lexicographic factory form (rank-ordered chunks, first set
/// reaching the max wins, everything after the first early-stopped chunk
/// discarded), so the result is bit-identical for any thread count; the
/// reported witness is the first maximum in GRAY order, which may be a
/// different (equally worst) set than the lexicographic scan reports.
AdversaryResult exhaustive_worst_faults_gray(const SrgIndex& index,
                                             std::size_t f,
                                             const SearchExecution& exec = {},
                                             std::uint32_t stop_above = 0);

/// Uniform random sampling of `samples` fault sets.
AdversaryResult sampled_worst_faults(std::size_t n, std::size_t f,
                                     std::size_t samples,
                                     const FaultEvaluator& eval, Rng& rng);

/// Parallel sampling: sample i is drawn from Rng::stream(seed, i), so the
/// sampled sets — and therefore the result — do not depend on the thread
/// count or on chunk boundaries.
AdversaryResult sampled_worst_faults(std::size_t n, std::size_t f,
                                     std::size_t samples,
                                     const FaultEvaluatorFactory& make_eval,
                                     std::uint64_t seed,
                                     const SearchExecution& exec);

/// Hill-climbing: from each start set, repeatedly try swapping one fault for
/// one non-fault, keeping strict improvements, until no swap helps or the
/// step budget runs out. `seeds` provides informed starting points (e.g.
/// concentrator members); uniform restarts fill the rest.
AdversaryResult hillclimb_worst_faults(std::size_t n, std::size_t f,
                                       const FaultEvaluator& eval, Rng& rng,
                                       std::size_t restarts = 8,
                                       std::size_t max_steps = 64,
                                       const std::vector<std::vector<Node>>& seeds = {});

/// Parallel hill-climbing: restart i climbs with Rng::stream(seed, i)
/// (uniform restarts also draw their start set from that stream), one
/// restart per chunk. Restarts are merged in index order; once a restart
/// reaches kUnreachable the rest are discarded, matching the serial early
/// break.
AdversaryResult hillclimb_worst_faults(std::size_t n, std::size_t f,
                                       const FaultEvaluatorFactory& make_eval,
                                       std::uint64_t seed,
                                       const SearchExecution& exec,
                                       std::size_t restarts = 8,
                                       std::size_t max_steps = 64,
                                       const std::vector<std::vector<Node>>& seeds = {});

// --- slice forms -------------------------------------------------------------
//
// Each searcher's slice form runs one contiguous window of its task space
// (still fanned across exec.threads internally) and returns the AdvPartial
// for that window; folding adjacent windows in order with
// merge_adversary_partials is bit-identical to the full-space search. These
// are what distributed workers execute — indices are GLOBAL (a worker
// handed ranks [begin, end) evaluates exactly what the local scan would
// there), so the coordinator's unit boundaries can never change the result.
// Executor telemetry accumulates into *executor when given.

/// Lexicographic exhaustive scan over subset ranks [begin_rank, end_rank).
AdvPartial exhaustive_worst_faults_slice(std::size_t n, std::size_t f,
                                         const FaultEvaluatorFactory& make_eval,
                                         std::uint64_t begin_rank,
                                         std::uint64_t end_rank,
                                         const SearchExecution& exec,
                                         std::uint32_t stop_above = 0,
                                         ExecutorStats* executor = nullptr);

/// Revolving-door exhaustive scan over gray ranks [begin_rank, end_rank).
AdvPartial exhaustive_worst_faults_gray_slice(const SrgIndex& index,
                                              std::size_t f,
                                              std::uint64_t begin_rank,
                                              std::uint64_t end_rank,
                                              const SearchExecution& exec = {},
                                              std::uint32_t stop_above = 0,
                                              ExecutorStats* executor = nullptr);

/// Random sampling over sample indices [begin_index, end_index); sample i
/// is always Rng::stream(seed, i).
AdvPartial sampled_worst_faults_slice(std::size_t n, std::size_t f,
                                      std::uint64_t begin_index,
                                      std::uint64_t end_index,
                                      const FaultEvaluatorFactory& make_eval,
                                      std::uint64_t seed,
                                      const SearchExecution& exec,
                                      ExecutorStats* executor = nullptr);

/// Hill-climbing over restart indices [begin_restart, end_restart); restart
/// i climbs with Rng::stream(seed, i) and starts from seeds[i] when
/// i < seeds.size().
AdvPartial hillclimb_worst_faults_slice(
    std::size_t n, std::size_t f, const FaultEvaluatorFactory& make_eval,
    std::uint64_t seed, const SearchExecution& exec,
    std::uint64_t begin_restart, std::uint64_t end_restart,
    std::size_t max_steps,
    const std::vector<std::vector<Node>>& seeds = {},
    ExecutorStats* executor = nullptr);

}  // namespace ftr
