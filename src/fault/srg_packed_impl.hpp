// Width-templated body of the packed SRG block kernel.
//
// Included ONCE by each per-ISA translation unit (srg_packed_portable /
// _avx2 / _avx512.cpp); everything here lives in an anonymous namespace
// so each TU keeps its own copy compiled under its own -m flags — the
// ODR-safety scheme described in srg_packed.hpp. The body is a faithful
// width generalization of the 64-lane kernel that used to live inline
// in SrgScratch::evaluate_gray_block: one uint64_t of lanes per entity
// becomes a LaneBlock<W>, and every phase — route kill masks, pair dead
// masks, the lane-parallel BFS — runs the same statements over W-word
// blocks. Lanes are still consumed in rank order, so results, per-lane
// evaluation counts, and early-stop behavior are bit-identical to the
// scalar oracle at every width.
//
// The caller (SrgScratch) owns phase (a) — walking the revolving-door
// enumerator into lane_node_mask / lane_touched — because that phase
// needs GraySubsetEnumerator, which must not be instantiated inside an
// AVX-flagged TU. Everything after the ctx handoff touches only raw
// arrays. No std:: calls in here either (see lane_block.hpp).
#include <cstddef>
#include <cstdint>

#include "fault/srg_packed.hpp"

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace ftr::packed {
namespace {

#define FTR_LANE_BLOCK_FRAGMENT 1
#include "fault/lane_block.hpp"
#undef FTR_LANE_BLOCK_FRAGMENT

template <unsigned W>
void run_block(const PackedCtx& ctx, std::size_t count,
               std::uint32_t survivors) {
  using Block = LaneBlock<W>;
  const std::size_t lanes = std::size_t{64} * W;
  const Block full = Block::first_lanes(count);

  for (std::size_t l = 0; l < lanes; ++l) {
    ctx.dead_pairs[l] = 0;
    ctx.diam[l] = 0;
  }
  for (unsigned i = 0; i < W; ++i) ctx.disconnected[i] = 0;

  // (b) Route kill masks via the inverted index: a route is dead in
  // every lane where some node on it is faulty.
  std::size_t num_dirty_routes = 0;
  for (std::size_t t = 0; t < ctx.lane_touched_count; ++t) {
    const std::uint32_t v = ctx.lane_touched[t];
    const Block m = Block::load(ctx.lane_node_mask + std::size_t{v} * W);
    for (std::uint32_t i = ctx.node_route_off[v];
         i < ctx.node_route_off[v + 1]; ++i) {
      const std::uint32_t r = ctx.node_route_ids[i];
      std::uint64_t* row = ctx.route_kill_mask + std::size_t{r} * W;
      const Block prev = Block::load(row);
      if (prev.none()) ctx.dirty_routes[num_dirty_routes++] = r;
      (prev | m).store(row);
    }
  }

  // (c) Pair dead masks: a pair is dead in the lanes where ALL of its
  // routes are killed — an AND over its contiguous route range.
  // Untouched pairs keep mask 0 (live in every lane).
  std::size_t num_dirty_pairs = 0;
  for (std::size_t i = 0; i < num_dirty_routes; ++i) {
    const std::uint32_t pid = ctx.route_pair[ctx.dirty_routes[i]];
    if (ctx.pair_dirty[pid] != 0) continue;
    ctx.pair_dirty[pid] = 1;
    ctx.dirty_pairs[num_dirty_pairs++] = pid;
    Block dead = Block::ones();
    for (std::uint32_t rr = ctx.pair_route_off[pid];
         rr < ctx.pair_route_off[pid + 1]; ++rr) {
      dead = dead & Block::load(ctx.route_kill_mask + std::size_t{rr} * W);
      if (dead.none()) break;
    }
    dead.store(ctx.pair_dead_mask + std::size_t{pid} * W);
    (dead & full).for_each_lane([&](std::size_t l) { ++ctx.dead_pairs[l]; });
  }

  // (d) Lane-parallel BFS: one LaneBlock of lanes per node. A lane
  // drops out of `active` once some source fails to reach every
  // survivor in it (its diameter is then kUnreachable, matching the
  // scalar early return).
  if (survivors >= 2) {
    Block disconnected = Block::zero();
    std::uint32_t* frontier = ctx.frontier;
    std::uint32_t* next = ctx.next;
    for (std::uint32_t s = 0; s < ctx.n; ++s) {
      const Block active = andnot(
          andnot(full, Block::load(ctx.lane_node_mask + std::size_t{s} * W)),
          disconnected);
      if (active.none()) continue;
      for (std::size_t i = 0; i < ctx.n * W; ++i) ctx.visited[i] = 0;
      for (std::size_t l = 0; l < lanes; ++l) ctx.ecc[l] = 0;
      active.store(ctx.visited + std::size_t{s} * W);
      active.store(ctx.new_mask + std::size_t{s} * W);
      frontier[0] = s;
      std::size_t frontier_count = 1;
      std::uint32_t level = 0;
      while (frontier_count != 0) {
        ++level;
        std::size_t next_count = 0;
        for (std::size_t i = 0; i < frontier_count; ++i) {
          const std::uint32_t u = frontier[i];
          const Block fm = Block::load(ctx.new_mask + std::size_t{u} * W);
          for (std::uint32_t k = ctx.src_pair_off[u];
               k < ctx.src_pair_off[u + 1]; ++k) {
            const std::uint32_t pid = ctx.src_pair_ids[k];
            const std::uint32_t v = ctx.pair_dst[pid];
            const Block m = andnot(
                andnot(fm,
                       Block::load(ctx.pair_dead_mask + std::size_t{pid} * W)),
                Block::load(ctx.visited + std::size_t{v} * W));
            if (m.none()) continue;
            std::uint64_t* nm = ctx.next_mask + std::size_t{v} * W;
            const Block prev = Block::load(nm);
            if (prev.none()) next[next_count++] = v;
            (prev | m).store(nm);
          }
        }
        for (std::size_t i = 0; i < frontier_count; ++i) {
          Block::zero().store(ctx.new_mask + std::size_t{frontier[i]} * W);
        }
        Block grew = Block::zero();
        for (std::size_t i = 0; i < next_count; ++i) {
          const std::uint32_t v = next[i];
          std::uint64_t* nm = ctx.next_mask + std::size_t{v} * W;
          const Block m = Block::load(nm);
          Block::zero().store(nm);
          m.store(ctx.new_mask + std::size_t{v} * W);
          std::uint64_t* vis = ctx.visited + std::size_t{v} * W;
          (Block::load(vis) | m).store(vis);
          grew = grew | m;
        }
        grew.for_each_lane([&](std::size_t l) { ctx.ecc[l] = level; });
        std::uint32_t* tmp = frontier;
        frontier = next;
        next = tmp;
        frontier_count = next_count;
      }
      // A lane reached every survivor iff every node is
      // visited-or-faulty.
      Block ok = active;
      for (std::uint32_t v = 0; v < ctx.n && ok.any(); ++v) {
        ok = ok & (Block::load(ctx.visited + std::size_t{v} * W) |
                   Block::load(ctx.lane_node_mask + std::size_t{v} * W));
      }
      disconnected = disconnected | andnot(active, ok);
      (active & ok).for_each_lane([&](std::size_t l) {
        if (ctx.ecc[l] > ctx.diam[l]) ctx.diam[l] = ctx.ecc[l];
      });
      if (disconnected == full) break;
    }
    disconnected.store(ctx.disconnected);
  }

  // Sparse cleanup: only the block's footprint was written, so only it
  // is re-zeroed — preserving the all-zero-between-blocks invariant.
  for (std::size_t t = 0; t < ctx.lane_touched_count; ++t) {
    Block::zero().store(ctx.lane_node_mask +
                        std::size_t{ctx.lane_touched[t]} * W);
  }
  for (std::size_t i = 0; i < num_dirty_routes; ++i) {
    Block::zero().store(ctx.route_kill_mask +
                        std::size_t{ctx.dirty_routes[i]} * W);
  }
  for (std::size_t i = 0; i < num_dirty_pairs; ++i) {
    const std::uint32_t pid = ctx.dirty_pairs[i];
    Block::zero().store(ctx.pair_dead_mask + std::size_t{pid} * W);
    ctx.pair_dirty[pid] = 0;
  }
}

inline PackedBlockFn block_fn_for(unsigned words) {
  switch (words) {
    case 1:
      return &run_block<1>;
    case 2:
      return &run_block<2>;
    case 4:
      return &run_block<4>;
    case 8:
      return &run_block<8>;
    default:
      return nullptr;
  }
}

}  // namespace
}  // namespace ftr::packed
