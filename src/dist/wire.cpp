#include "dist/wire.hpp"

#include <cstring>

#include "common/contracts.hpp"
#include "routing/serialization.hpp"

namespace ftr {
namespace {

constexpr std::uint32_t kFrameMagic = 0x57525446u;  // "FTRW" little-endian
constexpr std::size_t kHeaderBytes = 24;
// Sanity bound on payload length: a unit or result is at most a few MB (the
// largest is an explicit-set unit); anything bigger is a corrupt header.
constexpr std::uint64_t kMaxPayload = std::uint64_t{1} << 30;

class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back((v >> (8 * i)) & 0xff);
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back((v >> (8 * i)) & 0xff);
  }
  void nodes(const std::vector<Node>& v) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (Node x : v) u32(x);
  }
  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    out_.insert(out_.end(), b, b + n);
  }
  /// Appends the versioned ExecPolicy blob (the ONE policy encoding).
  void exec_policy(const ExecPolicy& p) { encode_exec_policy(p, out_); }
  std::vector<unsigned char> take() { return std::move(out_); }

 private:
  std::vector<unsigned char> out_;
};

class ByteReader {
 public:
  ByteReader(const unsigned char* p, std::size_t n) : p_(p), n_(n) {}

  std::uint8_t u8() {
    need(1);
    return p_[pos_++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{p_[pos_ + i]} << (8 * i);
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{p_[pos_ + i]} << (8 * i);
    pos_ += 8;
    return v;
  }
  std::vector<Node> nodes() {
    const std::uint32_t len = u32();
    // Bound before resize: a corrupt count must not drive a huge allocation.
    FTR_EXPECTS_MSG(std::size_t{len} * 4 <= n_ - pos_,
                    "wire payload truncated: " << len
                                               << "-node list exceeds frame");
    std::vector<Node> v(len);
    for (std::uint32_t i = 0; i < len; ++i) v[i] = u32();
    return v;
  }
  std::string str() {
    const std::uint32_t len = u32();
    need(len);
    std::string s(reinterpret_cast<const char*>(p_ + pos_), len);
    pos_ += len;
    return s;
  }
  /// Decodes the versioned ExecPolicy blob in place (strict: truncation,
  /// future versions, and out-of-range enum bytes throw).
  ExecPolicy exec_policy() { return decode_exec_policy(p_, n_, pos_); }
  void expect_end() const {
    FTR_EXPECTS_MSG(pos_ == n_, "wire payload has " << (n_ - pos_)
                                                    << " trailing byte(s)");
  }

 private:
  void need(std::size_t k) const {
    FTR_EXPECTS_MSG(n_ - pos_ >= k, "wire payload truncated: need "
                                        << k << " byte(s), have "
                                        << (n_ - pos_));
  }
  const unsigned char* p_;
  std::size_t n_;
  std::size_t pos_ = 0;
};

void store_u32(unsigned char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = (v >> (8 * i)) & 0xff;
}
void store_u64(unsigned char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = (v >> (8 * i)) & 0xff;
}
std::uint32_t load_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}
std::uint64_t load_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

// Validates a header; returns {type, payload_len, checksum}.
struct Header {
  std::uint32_t type;
  std::uint64_t len;
  std::uint64_t checksum;
};

Header parse_header(const unsigned char* h) {
  FTR_EXPECTS_MSG(load_u32(h) == kFrameMagic,
                  "wire frame has bad magic (stream corrupt or misaligned)");
  Header out;
  out.type = load_u32(h + 4);
  out.len = load_u64(h + 8);
  out.checksum = load_u64(h + 16);
  FTR_EXPECTS_MSG(out.len <= kMaxPayload,
                  "wire frame claims " << out.len
                                       << " payload bytes (corrupt length)");
  return out;
}

void check_payload(const Header& h, const unsigned char* payload) {
  FTR_EXPECTS_MSG(ftr_checksum64(payload, h.len) == h.checksum,
                  "wire frame payload checksum mismatch");
}

}  // namespace

const char* unit_kind_name(UnitKind kind) {
  switch (kind) {
    case UnitKind::kSweepGray: return "sweep-gray";
    case UnitKind::kSweepSampled: return "sweep-sampled";
    case UnitKind::kSweepExplicit: return "sweep-explicit";
    case UnitKind::kAdvGray: return "adv-gray";
    case UnitKind::kAdvLex: return "adv-lex";
    case UnitKind::kAdvSampled: return "adv-sampled";
    case UnitKind::kAdvClimb: return "adv-climb";
  }
  return "unknown";
}

bool unit_is_sweep(UnitKind kind) {
  return kind == UnitKind::kSweepGray || kind == UnitKind::kSweepSampled ||
         kind == UnitKind::kSweepExplicit;
}

std::vector<unsigned char> pack_frame(FrameType type,
                                      const std::vector<unsigned char>& payload) {
  std::vector<unsigned char> frame(kHeaderBytes + payload.size());
  store_u32(frame.data(), kFrameMagic);
  store_u32(frame.data() + 4, static_cast<std::uint32_t>(type));
  store_u64(frame.data() + 8, payload.size());
  store_u64(frame.data() + 16, ftr_checksum64(payload.data(), payload.size()));
  if (!payload.empty()) {
    std::memcpy(frame.data() + kHeaderBytes, payload.data(), payload.size());
  }
  return frame;
}

bool pop_frame(std::vector<unsigned char>& buf, WireFrame& out) {
  if (buf.size() < kHeaderBytes) return false;
  const Header h = parse_header(buf.data());
  if (buf.size() < kHeaderBytes + h.len) return false;
  check_payload(h, buf.data() + kHeaderBytes);
  out.type = static_cast<FrameType>(h.type);
  out.payload.assign(buf.begin() + kHeaderBytes,
                     buf.begin() + static_cast<std::ptrdiff_t>(kHeaderBytes + h.len));
  buf.erase(buf.begin(),
            buf.begin() + static_cast<std::ptrdiff_t>(kHeaderBytes + h.len));
  return true;
}

IoStatus read_frame(int fd, WireFrame& out) {
  unsigned char header[kHeaderBytes];
  IoStatus s = read_exact(fd, header, sizeof header);
  if (s != IoStatus::kOk) return s;
  const Header h = parse_header(header);
  out.payload.resize(h.len);
  if (h.len > 0) {
    s = read_exact(fd, out.payload.data(), h.len);
    if (s != IoStatus::kOk) return s;
  }
  check_payload(h, out.payload.data());
  out.type = static_cast<FrameType>(h.type);
  return IoStatus::kOk;
}

std::vector<unsigned char> encode_unit(const UnitSpec& unit) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(unit.kind));
  w.u32(unit.f);
  w.u64(unit.unit_id);
  w.u64(unit.begin);
  w.u64(unit.end);
  w.u64(unit.seed);
  w.u64(unit.delivery_pairs);
  w.u64(unit.max_steps);
  w.u32(unit.stop_above);
  w.exec_policy(unit.exec);
  w.u32(static_cast<std::uint32_t>(unit.sets.size()));
  for (const auto& s : unit.sets) w.nodes(s);
  w.u32(static_cast<std::uint32_t>(unit.climb_seeds.size()));
  for (const auto& s : unit.climb_seeds) w.nodes(s);
  return w.take();
}

UnitSpec decode_unit(const std::vector<unsigned char>& payload) {
  ByteReader r(payload.data(), payload.size());
  UnitSpec u;
  u.kind = static_cast<UnitKind>(r.u32());
  u.f = r.u32();
  u.unit_id = r.u64();
  u.begin = r.u64();
  u.end = r.u64();
  u.seed = r.u64();
  u.delivery_pairs = r.u64();
  u.max_steps = r.u64();
  u.stop_above = r.u32();
  u.exec = r.exec_policy();
  const std::uint32_t nsets = r.u32();
  u.sets.reserve(nsets);
  for (std::uint32_t i = 0; i < nsets; ++i) u.sets.push_back(r.nodes());
  const std::uint32_t nseeds = r.u32();
  u.climb_seeds.reserve(nseeds);
  for (std::uint32_t i = 0; i < nseeds; ++i) u.climb_seeds.push_back(r.nodes());
  r.expect_end();
  return u;
}

std::vector<unsigned char> encode_sweep_result(std::uint64_t unit_id,
                                               const SweepPartial& p) {
  ByteWriter w;
  w.u64(unit_id);
  w.u64(p.sets);
  w.u64(p.disconnected);
  w.u64(p.diameter_histogram.size());
  for (std::uint64_t b : p.diameter_histogram) w.u64(b);
  w.u8(p.have_worst ? 1 : 0);
  w.u32(p.worst_diameter);
  w.u64(p.worst_index);
  w.nodes(p.worst_faults);
  w.u64(p.pairs_sampled);
  w.u64(p.delivered);
  w.u64(p.route_hops_total);
  w.u32(p.max_route_hops);
  w.u64(p.max_edge_hops);
  return w.take();
}

std::pair<std::uint64_t, SweepPartial> decode_sweep_result(
    const std::vector<unsigned char>& payload) {
  ByteReader r(payload.data(), payload.size());
  const std::uint64_t unit_id = r.u64();
  SweepPartial p;
  p.sets = r.u64();
  p.disconnected = r.u64();
  const std::uint64_t hist = r.u64();
  FTR_EXPECTS_MSG(hist <= payload.size() / 8,
                  "wire payload truncated: histogram exceeds frame");
  p.diameter_histogram.resize(hist);
  for (std::uint64_t i = 0; i < hist; ++i) p.diameter_histogram[i] = r.u64();
  p.have_worst = r.u8() != 0;
  p.worst_diameter = r.u32();
  p.worst_index = r.u64();
  p.worst_faults = r.nodes();
  p.pairs_sampled = r.u64();
  p.delivered = r.u64();
  p.route_hops_total = r.u64();
  p.max_route_hops = r.u32();
  p.max_edge_hops = r.u64();
  r.expect_end();
  return {unit_id, std::move(p)};
}

std::vector<unsigned char> encode_adv_result(std::uint64_t unit_id,
                                             const AdvPartial& p) {
  ByteWriter w;
  w.u64(unit_id);
  w.u32(p.d);
  w.u8(p.any ? 1 : 0);
  w.u8(p.stopped ? 1 : 0);
  w.nodes(p.faults);
  w.u64(p.evaluations);
  return w.take();
}

std::pair<std::uint64_t, AdvPartial> decode_adv_result(
    const std::vector<unsigned char>& payload) {
  ByteReader r(payload.data(), payload.size());
  const std::uint64_t unit_id = r.u64();
  AdvPartial p;
  p.d = r.u32();
  p.any = r.u8() != 0;
  p.stopped = r.u8() != 0;
  p.faults = r.nodes();
  p.evaluations = r.u64();
  r.expect_end();
  return {unit_id, std::move(p)};
}

std::vector<unsigned char> encode_error(std::uint64_t unit_id,
                                        const std::string& message) {
  ByteWriter w;
  w.u64(unit_id);
  w.u32(static_cast<std::uint32_t>(message.size()));
  w.bytes(message.data(), message.size());
  return w.take();
}

std::pair<std::uint64_t, std::string> decode_error(
    const std::vector<unsigned char>& payload) {
  ByteReader r(payload.data(), payload.size());
  const std::uint64_t unit_id = r.u64();
  std::string msg = r.str();
  r.expect_end();
  return {unit_id, std::move(msg)};
}

}  // namespace ftr
