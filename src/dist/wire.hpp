// Wire format for the multi-process sweep layer: length-prefixed,
// checksummed frames over pipes between the coordinator and its forked
// workers.
//
// A frame is a 24-byte header {magic u32, type u32, payload length u64,
// payload checksum u64} followed by the payload; the checksum is
// ftr_checksum64 — the same FNV-1a-over-LE-words hash the binary snapshot
// container uses, so one hashing authority covers both persistence and the
// wire. All integers are little-endian fixed width. Decoding is strict: bad
// magic, an absurd length, a checksum mismatch, payload truncation, and
// trailing bytes all throw ContractViolation — a torn frame from a dying
// worker surfaces as a loud error or a closed stream, never as data.
//
// The protocol is deliberately tiny: the coordinator sends kUnit frames
// (one UnitSpec each), a worker answers every unit with exactly one
// kSweepResult/kAdvResult frame (the unit_id leads the payload so the
// coordinator can merge out-of-order completions in unit order), or a
// kError frame carrying the exception text. Closing the unit pipe is the
// shutdown signal.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "analysis/fault_sweep.hpp"
#include "common/pipe_io.hpp"
#include "fault/adversary.hpp"
#include "fault/srg_engine.hpp"
#include "graph/graph.hpp"

namespace ftr {

enum class FrameType : std::uint32_t {
  kUnit = 2,
  kSweepResult = 3,
  kAdvResult = 4,
  kError = 6,
};

/// What a work unit asks a worker to run. Each kind maps onto one of the
/// slice/partial entry points, which take GLOBAL indices — so a unit is
/// nothing but a window [begin, end) of the task space plus the knobs, and
/// any re-chunking (or re-dispatch after a worker dies) cannot change the
/// merged result.
enum class UnitKind : std::uint32_t {
  kSweepGray = 1,     // sweep_exhaustive_gray_range over subset ranks
  kSweepSampled = 2,  // SampledStreamSource window through the sweep engine
  kSweepExplicit = 3, // literal fault sets carried in the unit (stdin feeds)
  kAdvGray = 4,       // exhaustive_worst_faults_gray_slice
  kAdvLex = 5,        // exhaustive_worst_faults_slice (lexicographic)
  kAdvSampled = 6,    // sampled_worst_faults_slice
  kAdvClimb = 7,      // hillclimb_worst_faults_slice over restart indices
};

const char* unit_kind_name(UnitKind kind);
bool unit_is_sweep(UnitKind kind);

struct UnitSpec {
  UnitKind kind = UnitKind::kSweepGray;
  /// Merge position: results come back keyed by it, and the coordinator
  /// folds partials in unit_id order (the merge-precondition discipline).
  std::uint64_t unit_id = 0;
  std::uint32_t f = 0;
  std::uint64_t begin = 0;  // GLOBAL window [begin, end): subset ranks,
  std::uint64_t end = 0;    // sample indices, restart indices, set indices
  std::uint64_t seed = 0;   // stream root (sampling, delivery, climbing)
  std::uint64_t delivery_pairs = 0;  // sweep units only
  std::uint64_t max_steps = 0;       // kAdvClimb step budget
  std::uint32_t stop_above = 0;      // kAdvGray/kAdvLex early-stop threshold
  /// How the unit executes INSIDE the worker process: threads, kernel,
  /// lanes, batch size, executor. Carried over the wire via the versioned
  /// encode_exec_policy blob (common/exec_policy.hpp) — pure throughput
  /// knobs; units stay result-invariant across all of them.
  ExecPolicy exec;
  std::vector<std::vector<Node>> sets;         // kSweepExplicit literal sets
  std::vector<std::vector<Node>> climb_seeds;  // kAdvClimb informed starts
                                               // (GLOBAL restart indexing)
};

struct WireFrame {
  FrameType type = FrameType::kError;
  std::vector<unsigned char> payload;
};

/// Serializes a complete frame (header + payload), ready for the pipe.
std::vector<unsigned char> pack_frame(FrameType type,
                                      const std::vector<unsigned char>& payload);

/// Pops one complete frame off the front of `buf` (as filled by
/// read_available). Returns false when the buffered bytes do not yet hold a
/// whole frame; throws ContractViolation on bad magic, an absurd length, or
/// a checksum mismatch.
bool pop_frame(std::vector<unsigned char>& buf, WireFrame& out);

/// Blocking read of one frame (the worker side). kClosed on clean EOF
/// before the header — and on EOF mid-frame, since a half-delivered frame
/// from a dying peer is a closed stream, not data.
IoStatus read_frame(int fd, WireFrame& out);

// Payload encode/decode. Decoders are strict (truncation and trailing
// bytes throw); result payloads lead with the unit_id they answer.
std::vector<unsigned char> encode_unit(const UnitSpec& unit);
UnitSpec decode_unit(const std::vector<unsigned char>& payload);

std::vector<unsigned char> encode_sweep_result(std::uint64_t unit_id,
                                               const SweepPartial& partial);
std::pair<std::uint64_t, SweepPartial> decode_sweep_result(
    const std::vector<unsigned char>& payload);

std::vector<unsigned char> encode_adv_result(std::uint64_t unit_id,
                                             const AdvPartial& partial);
std::pair<std::uint64_t, AdvPartial> decode_adv_result(
    const std::vector<unsigned char>& payload);

std::vector<unsigned char> encode_error(std::uint64_t unit_id,
                                        const std::string& message);
std::pair<std::uint64_t, std::string> decode_error(
    const std::vector<unsigned char>& payload);

}  // namespace ftr
