// The coordinator side of the distributed sweep layer: forks a pool of
// worker processes (pipe pair each, single host), partitions a sweep's or
// adversary search's task space into UnitSpec windows, fans them over the
// workers, and folds the returned partials in unit order with exactly the
// merge authorities the in-process paths use (merge_sweep_partials /
// merge_adversary_partials). Because units carry GLOBAL indices and the
// merges are associative under the index-order discipline, the merged
// result — every aggregate, the worst witness, the evaluation count, the
// early-stop point — is bit-identical to the in-process computation for ANY
// worker count and ANY unit size.
//
// Robustness: a worker that dies mid-unit has its window requeued for the
// survivors (or executed inline by the coordinator when none remain); a
// worker that hangs past the per-unit timeout is SIGKILLed and its unit runs
// inline — so a unit is re-dispatched, never lost and never double-counted
// (results are keyed and stored once per unit id). Early-stopping searches
// stop dispatching units past the first stopped one but let in-flight units
// finish, so the pipes are drained between calls and the pool can be
// reused.
//
// Table acquisition is snapshot-fed: workers load the binary snapshot
// AFTER the fork — from the original file when the CLI input was already a
// snapshot, otherwise from an unlinked temp file the coordinator serializes
// once and the children inherit by fd (positional reads, so all children
// share one file description safely). The parent's heap is never relied on
// post-fork.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include <sys/types.h>

#include "analysis/fault_sweep.hpp"
#include "common/rng.hpp"
#include "dist/wire.hpp"
#include "fault/tolerance_check.hpp"
#include "routing/serialization.hpp"

namespace ftr {

struct DistPoolOptions {
  /// Worker processes to fork. Must be >= 1 (0 workers means "don't build a
  /// pool" — the callers keep the in-process path for that).
  unsigned workers = 1;
  /// Task items (subset ranks, sample indices, restart indices, literal
  /// sets) per unit; 0 = auto (~8 units per worker over the task space,
  /// clamped to [1, 65536]; streams of unknown length use 4096).
  std::uint64_t unit_items = 0;
  /// How units execute INSIDE each worker process (the process x thread
  /// hierarchy): exec.threads is the per-worker thread count, and
  /// kernel/lanes/batch/executor ride along unchanged. Unit boundaries are
  /// invariant under every knob, so stdout never depends on any of them.
  ExecPolicy exec;
  /// Per-unit wall-clock budget; a worker that blows it is SIGKILLed and
  /// its unit runs inline. 0 disables the watchdog.
  double unit_timeout_sec = 300.0;
};

struct DistWorkerStats {
  std::uint64_t units = 0;  // completed by this worker
  std::uint64_t items = 0;  // task items inside those units
  std::uint64_t bytes_rx = 0;
  double busy_seconds = 0.0;
};

/// Coordinator telemetry (scheduling-dependent — stderr probes, never part
/// of the deterministic result). Accumulates over the pool's lifetime.
struct DistStats {
  std::uint64_t units_dispatched = 0;
  std::uint64_t units_completed = 0;  // by workers
  std::uint64_t units_retried = 0;    // requeued after a worker died
  std::uint64_t units_inline = 0;     // executed by the coordinator itself
  std::uint64_t bytes_tx = 0;
  std::uint64_t bytes_rx = 0;
  unsigned workers_spawned = 0;
  unsigned workers_exited = 0;  // died on their own (EOF/EPIPE)
  unsigned workers_killed = 0;  // hung past the timeout, SIGKILLed
  std::vector<DistWorkerStats> per_worker;
};

class DistSweepPool {
 public:
  /// Forks options.workers children immediately. `snapshot` must outlive
  /// the pool (it backs the inline fallback and the distributed check);
  /// `snapshot_path` names the snapshot file workers should mmap, or "" to
  /// have the coordinator serialize `snapshot` into an unlinked temp file
  /// the children inherit by fd. Call from a single-threaded process state
  /// (the parallel executor joins its threads per call, so any point
  /// between sweeps qualifies).
  DistSweepPool(const TableSnapshot& snapshot, std::string snapshot_path,
                const DistPoolOptions& options);
  ~DistSweepPool();
  DistSweepPool(const DistSweepPool&) = delete;
  DistSweepPool& operator=(const DistSweepPool&) = delete;

  // Sweeps (no early stop; the merged partial summarizes via
  // summarize_sweep_partial exactly like the in-process engine).
  SweepPartial sweep_exhaustive(std::size_t f,
                                const FaultSweepOptions& sweep_options);
  SweepPartial sweep_sampled(std::size_t f, std::uint64_t count,
                             const FaultSweepOptions& sweep_options);
  /// Consumes `source` on the coordinator, re-chunking it into explicit-set
  /// units (this is how unbounded stdin feeds distribute).
  SweepPartial sweep_source(FaultSetSource& source,
                            const FaultSweepOptions& sweep_options);

  // Adversary searches (early-stopping ones stop dispatching past the
  // first stopped unit; evaluation counts match the in-process scans).
  AdvPartial adv_gray(std::uint32_t f, std::uint32_t stop_above = 0);
  AdvPartial adv_lex(std::uint32_t f, std::uint32_t stop_above = 0);
  AdvPartial adv_sampled(std::uint32_t f, std::uint64_t samples,
                         std::uint64_t seed);
  AdvPartial adv_climb(std::uint32_t f, std::uint64_t restarts,
                       std::uint64_t seed, std::uint64_t max_steps,
                       const std::vector<std::vector<Node>>& seeds = {});

  const TableSnapshot& snapshot() const { return *snapshot_; }
  const DistPoolOptions& options() const { return options_; }
  const DistStats& stats() const { return stats_; }
  unsigned live_workers() const;

 private:
  struct Worker;

  [[noreturn]] void child_main(int in_fd, int out_fd, unsigned index);
  void spawn_workers();
  std::uint64_t auto_unit_items(std::uint64_t total) const;

  /// The event loop: pulls units from `feed` (which assigns no ids — the
  /// pool numbers them 0..k in generation order), dispatches, recovers, and
  /// stores results. Exactly one of the output vectors fills, positionally
  /// by unit id.
  void run(const std::function<std::optional<UnitSpec>()>& feed,
           bool adversary,
           std::vector<std::optional<SweepPartial>>& sweeps,
           std::vector<std::optional<AdvPartial>>& advs);
  SweepPartial run_sweep(const std::function<std::optional<UnitSpec>()>& feed);
  AdvPartial run_adv(const std::function<std::optional<UnitSpec>()>& feed);

  UnitSpec base_sweep_unit(UnitKind kind,
                           const FaultSweepOptions& sweep_options) const;
  UnitSpec base_adv_unit(UnitKind kind, std::uint32_t f) const;

  const TableSnapshot* snapshot_;
  std::string snapshot_path_;
  DistPoolOptions options_;
  DistStats stats_;
  std::vector<Worker> workers_;
  int payload_fd_ = -1;
};

/// The distributed mirror of the table-level check_tolerance: same
/// route-load hill-climber seeds, same single seed draw from `rng`, same
/// decision tree (gray fast path / lexicographic exhaustion / sampling +
/// hill-climbing) — but each search phase fans over the pool's workers.
/// The report is bit-identical to the in-process check.
ToleranceReport check_tolerance_distributed(
    DistSweepPool& pool, std::uint32_t f, std::uint32_t claimed_bound,
    Rng& rng, const ToleranceCheckOptions& options = {});

}  // namespace ftr
