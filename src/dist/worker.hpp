// The worker side of the distributed sweep layer: a forked child that loads
// the table snapshot (from a file path or an inherited fd), then sits in a
// blocking frame loop — read one UnitSpec, execute it through the
// slice/partial entry points, write back exactly one result frame. Workers
// never touch stdout; the coordinator owns all user-visible output.
//
// execute_sweep_unit / execute_adv_unit are the single execution authority:
// worker processes and the coordinator's inline fallback (dead/hung worker,
// zero live workers) both call them, so a re-executed unit cannot produce a
// different partial than the worker would have.
#pragma once

#include <cstdint>

#include "dist/wire.hpp"
#include "routing/serialization.hpp"

namespace ftr {

/// Failure injection for the robustness tests. FTROUTE_TEST_WORKER_FAIL =
/// "exit:W:U" (worker W exits mid-unit) or "hang:W:U" (worker W hangs until
/// killed), where U is the 0-based ordinal of the unit AS RECEIVED by that
/// worker. Unset, empty, or malformed specs parse to kNone.
struct WorkerFailSpec {
  enum class Mode : std::uint8_t { kNone, kExit, kHang };
  Mode mode = Mode::kNone;
  std::uint32_t worker = 0;
  std::uint64_t unit_ordinal = 0;
};

WorkerFailSpec parse_worker_fail_spec(const char* spec);

/// Executes one unit against the snapshot, returning the partial for the
/// unit's global window. Pure functions of (snapshot, unit) minus telemetry.
SweepPartial execute_sweep_unit(const TableSnapshot& snapshot,
                                const UnitSpec& unit);
AdvPartial execute_adv_unit(const TableSnapshot& snapshot,
                            const UnitSpec& unit);

/// The worker process body. Returns the exit code the child should _exit
/// with: 0 on clean shutdown (EOF on in_fd), nonzero on protocol or
/// execution failure (an execution exception is also reported to the
/// coordinator as a kError frame before exiting).
int run_worker_loop(int in_fd, int out_fd, const TableSnapshot& snapshot,
                    std::uint32_t worker_index);

}  // namespace ftr
