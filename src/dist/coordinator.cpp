#include "dist/coordinator.hpp"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <deque>
#include <thread>
#include <utility>

#include "common/combinatorics.hpp"
#include "common/contracts.hpp"
#include "common/pipe_io.hpp"
#include "dist/worker.hpp"

namespace ftr {

namespace {

using Clock = std::chrono::steady_clock;

// Mirrors the enumeration-size guard the in-process exhaustive scans apply:
// a saturated binomial means the task space is not u64-addressable.
std::uint64_t checked_total(std::size_t n, std::size_t f) {
  const std::uint64_t total = binomial(n, f);
  FTR_EXPECTS_MSG(total != ~std::uint64_t{0},
                  "C(" << n << ", " << f
                       << ") overflows the 64-bit rank space");
  return total;
}

}  // namespace

struct DistSweepPool::Worker {
  pid_t pid = -1;
  int to_fd = -1;    // coordinator -> worker (unit frames), O_NONBLOCK
  int from_fd = -1;  // worker -> coordinator (result frames), O_NONBLOCK
  unsigned index = 0;
  bool alive = false;
  bool busy = false;
  std::optional<UnitSpec> unit;  // in flight, kept verbatim for re-dispatch
  std::vector<unsigned char> tx;
  std::size_t tx_off = 0;
  std::vector<unsigned char> rx;
  Clock::time_point dispatched_at{};
  Clock::time_point deadline = Clock::time_point::max();
};

DistSweepPool::DistSweepPool(const TableSnapshot& snapshot,
                             std::string snapshot_path,
                             const DistPoolOptions& options)
    : snapshot_(&snapshot),
      snapshot_path_(std::move(snapshot_path)),
      options_(options) {
  FTR_EXPECTS_MSG(options_.workers >= 1,
                  "a distributed pool needs at least one worker");
  FTR_EXPECTS(snapshot_->index != nullptr);
  stats_.per_worker.resize(options_.workers);
  spawn_workers();
}

void DistSweepPool::child_main(int in_fd, int out_fd, unsigned index) {
  int code = 8;
  try {
    const TableSnapshot snap =
        snapshot_path_.empty()
            ? load_table_snapshot_fd(payload_fd_, SnapshotLoadMode::kMmap,
                                     "<snapshot payload fd>")
            : load_table_snapshot_file(snapshot_path_, SnapshotLoadMode::kMmap);
    code = run_worker_loop(in_fd, out_fd, snap, index);
  } catch (const std::exception& e) {
    // A worker that cannot even load the table reports why before dying;
    // the coordinator surfaces the message instead of a bare dead pipe.
    const auto reply = pack_frame(FrameType::kError,
                                  encode_error(~std::uint64_t{0}, e.what()));
    (void)write_exact(out_fd, reply.data(), reply.size());
    code = 9;
  }
  // _exit, not exit: the child must not flush the parent's inherited stdio
  // buffers or run its atexit hooks.
  ::_exit(code);
}

void DistSweepPool::spawn_workers() {
  ignore_sigpipe();
  if (snapshot_path_.empty()) {
    // Serialize ONCE; every child inherits the unlinked fd and loads with
    // positional reads, so one shared file description is race-free.
    const std::string bytes = table_snapshot_to_string(*snapshot_);
    payload_fd_ = open_unlinked_temp();
    FTR_EXPECTS_MSG(
        write_exact(payload_fd_, bytes.data(), bytes.size()) == IoStatus::kOk,
        "failed to stage the snapshot payload for the workers");
  }

  struct Pipes {
    int to[2] = {-1, -1};
    int from[2] = {-1, -1};
  };
  std::vector<Pipes> pipes(options_.workers);
  for (auto& p : pipes) {
    FTR_EXPECTS_MSG(::pipe(p.to) == 0 && ::pipe(p.from) == 0,
                    "pipe() failed spawning the worker pool");
  }

  workers_.resize(options_.workers);
  for (unsigned i = 0; i < options_.workers; ++i) {
    const pid_t pid = ::fork();
    FTR_EXPECTS_MSG(pid >= 0, "fork() failed spawning worker " << i);
    if (pid == 0) {
      // Child: keep only this worker's ends (and the payload fd). Closing
      // the other workers' pipe ends matters for liveness — a sibling's
      // write end held open here would mask its EOF forever.
      for (unsigned j = 0; j < options_.workers; ++j) {
        ::close(pipes[j].to[1]);
        ::close(pipes[j].from[0]);
        if (j != i) {
          ::close(pipes[j].to[0]);
          ::close(pipes[j].from[1]);
        }
      }
      child_main(pipes[i].to[0], pipes[i].from[1], i);
    }
    workers_[i].pid = pid;
    workers_[i].index = i;
  }
  for (unsigned i = 0; i < options_.workers; ++i) {
    ::close(pipes[i].to[0]);
    ::close(pipes[i].from[1]);
    workers_[i].to_fd = pipes[i].to[1];
    workers_[i].from_fd = pipes[i].from[0];
    set_nonblocking(workers_[i].to_fd, true);
    set_nonblocking(workers_[i].from_fd, true);
    workers_[i].alive = true;
  }
  stats_.workers_spawned = options_.workers;
}

DistSweepPool::~DistSweepPool() {
  // EOF on the unit pipes is the shutdown signal; idle workers exit
  // immediately. Grace-period reap, then the hammer — a wedged child must
  // not wedge us.
  for (auto& w : workers_) {
    if (w.to_fd >= 0) {
      ::close(w.to_fd);
      w.to_fd = -1;
    }
  }
  for (auto& w : workers_) {
    if (w.pid > 0) {
      bool reaped = false;
      for (int i = 0; i < 200 && !reaped; ++i) {
        if (try_reap_child(w.pid).has_value()) {
          reaped = true;
        } else {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
      }
      if (!reaped) kill_and_reap(w.pid);
      w.pid = -1;
    }
    if (w.from_fd >= 0) {
      ::close(w.from_fd);
      w.from_fd = -1;
    }
  }
  if (payload_fd_ >= 0) {
    ::close(payload_fd_);
    payload_fd_ = -1;
  }
}

unsigned DistSweepPool::live_workers() const {
  unsigned live = 0;
  for (const auto& w : workers_) live += w.alive ? 1 : 0;
  return live;
}

std::uint64_t DistSweepPool::auto_unit_items(std::uint64_t total) const {
  if (options_.unit_items > 0) return options_.unit_items;
  const std::uint64_t slots = std::uint64_t{options_.workers} * 8;
  const std::uint64_t per = (total + slots - 1) / slots;
  return std::clamp<std::uint64_t>(per, 1, 65536);
}

void DistSweepPool::run(const std::function<std::optional<UnitSpec>()>& feed,
                        bool adversary,
                        std::vector<std::optional<SweepPartial>>& sweeps,
                        std::vector<std::optional<AdvPartial>>& advs) {
  sweeps.clear();
  advs.clear();

  std::uint64_t next_id = 0;
  bool feed_done = false;
  // Unit id of the first early-stopped slice: units past it are not needed
  // (the in-order merge discards them), so stop generating there.
  std::optional<std::uint64_t> stop_bound;
  std::deque<UnitSpec> retry;
  std::size_t outstanding = 0;

  const bool has_timeout = options_.unit_timeout_sec > 0;
  const auto timeout = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(std::max(options_.unit_timeout_sec, 0.0)));

  auto unit_needed = [&](std::uint64_t id) {
    return !stop_bound.has_value() || id < *stop_bound;
  };

  auto store_sweep = [&](std::uint64_t id, SweepPartial&& p) {
    if (sweeps.size() <= id) sweeps.resize(id + 1);
    if (!sweeps[id].has_value()) sweeps[id] = std::move(p);
  };
  auto store_adv = [&](std::uint64_t id, AdvPartial&& p) {
    if (advs.size() <= id) advs.resize(id + 1);
    if (!advs[id].has_value()) {
      if (p.stopped) {
        stop_bound = std::min(stop_bound.value_or(id), id);
      }
      advs[id] = std::move(p);
    }
  };

  auto take_next = [&]() -> std::optional<UnitSpec> {
    while (!retry.empty()) {
      UnitSpec u = std::move(retry.front());
      retry.pop_front();
      if (unit_needed(u.unit_id)) return u;
    }
    if (feed_done) return std::nullopt;
    if (stop_bound.has_value() && next_id >= *stop_bound) return std::nullopt;
    auto u = feed();
    if (!u.has_value()) {
      feed_done = true;
      return std::nullopt;
    }
    u->unit_id = next_id++;
    return u;
  };

  auto run_inline = [&](const UnitSpec& unit) {
    if (unit_is_sweep(unit.kind)) {
      store_sweep(unit.unit_id, execute_sweep_unit(*snapshot_, unit));
    } else {
      store_adv(unit.unit_id, execute_adv_unit(*snapshot_, unit));
    }
    ++stats_.units_inline;
  };

  auto release_unit = [&](Worker& w) {
    w.busy = false;
    w.unit.reset();
    w.deadline = Clock::time_point::max();
    --outstanding;
  };

  // The worker is gone (EOF, EPIPE, read error): reap it and requeue its
  // in-flight unit at the front so survivors pick it up first.
  auto on_worker_death = [&](Worker& w) {
    if (!w.alive) return;
    w.alive = false;
    if (w.to_fd >= 0) {
      ::close(w.to_fd);
      w.to_fd = -1;
    }
    if (w.from_fd >= 0) {
      ::close(w.from_fd);
      w.from_fd = -1;
    }
    if (w.pid > 0) {
      if (!try_reap_child(w.pid).has_value()) kill_and_reap(w.pid);
      w.pid = -1;
    }
    ++stats_.workers_exited;
    w.tx.clear();
    w.tx_off = 0;
    w.rx.clear();
    if (w.busy) {
      ++stats_.units_retried;
      retry.push_front(std::move(*w.unit));
      release_unit(w);
    }
  };

  // Hung past the deadline: SIGKILL, then run the unit inline. Inline (not
  // requeue) on purpose — a unit that times out on a worker would time out
  // on the next one too, and the coordinator must make progress.
  auto on_worker_timeout = [&](Worker& w) {
    w.alive = false;
    if (w.to_fd >= 0) {
      ::close(w.to_fd);
      w.to_fd = -1;
    }
    if (w.from_fd >= 0) {
      ::close(w.from_fd);
      w.from_fd = -1;
    }
    if (w.pid > 0) {
      kill_and_reap(w.pid);
      w.pid = -1;
    }
    ++stats_.workers_killed;
    const UnitSpec unit = std::move(*w.unit);
    w.tx.clear();
    w.tx_off = 0;
    w.rx.clear();
    release_unit(w);
    if (unit_needed(unit.unit_id)) run_inline(unit);
  };

  auto flush_tx = [&](Worker& w) {
    while (w.tx_off < w.tx.size()) {
      const ssize_t n = ::write(w.to_fd, w.tx.data() + w.tx_off,
                                w.tx.size() - w.tx_off);
      if (n > 0) {
        w.tx_off += static_cast<std::size_t>(n);
        stats_.bytes_tx += static_cast<std::uint64_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      on_worker_death(w);
      return;
    }
    w.tx.clear();
    w.tx_off = 0;
  };

  auto dispatch = [&](Worker& w, UnitSpec&& unit) {
    const auto frame = pack_frame(FrameType::kUnit, encode_unit(unit));
    w.unit = std::move(unit);
    w.busy = true;
    w.dispatched_at = Clock::now();
    w.deadline =
        has_timeout ? w.dispatched_at + timeout : Clock::time_point::max();
    w.tx.insert(w.tx.end(), frame.begin(), frame.end());
    ++outstanding;
    ++stats_.units_dispatched;
    flush_tx(w);
  };

  auto handle_frame = [&](Worker& w, WireFrame&& frame) {
    switch (frame.type) {
      case FrameType::kSweepResult:
      case FrameType::kAdvResult: {
        FTR_EXPECTS_MSG(w.busy && w.unit.has_value(),
                        "worker " << w.index << " sent an unsolicited result");
        FTR_EXPECTS_MSG((frame.type == FrameType::kAdvResult) == adversary,
                        "worker " << w.index
                                  << " answered with the wrong result kind");
        const auto now = Clock::now();
        auto& pw = stats_.per_worker[w.index];
        ++pw.units;
        pw.busy_seconds +=
            std::chrono::duration<double>(now - w.dispatched_at).count();
        if (frame.type == FrameType::kSweepResult) {
          auto [id, partial] = decode_sweep_result(frame.payload);
          FTR_EXPECTS_MSG(id == w.unit->unit_id,
                          "worker " << w.index << " answered unit " << id
                                    << " while unit " << w.unit->unit_id
                                    << " was in flight");
          pw.items += partial.sets;
          store_sweep(id, std::move(partial));
        } else {
          auto [id, partial] = decode_adv_result(frame.payload);
          FTR_EXPECTS_MSG(id == w.unit->unit_id,
                          "worker " << w.index << " answered unit " << id
                                    << " while unit " << w.unit->unit_id
                                    << " was in flight");
          pw.items += w.unit->end - w.unit->begin;
          store_adv(id, std::move(partial));
        }
        ++stats_.units_completed;
        release_unit(w);
        return;
      }
      case FrameType::kError: {
        auto [id, message] = decode_error(frame.payload);
        FTR_EXPECTS_MSG(false, "worker " << w.index << " failed on unit "
                                         << id << ": " << message);
        return;
      }
      default:
        FTR_EXPECTS_MSG(false, "worker " << w.index
                                         << " sent an unexpected frame type");
    }
  };

  auto handle_readable = [&](Worker& w) {
    std::size_t appended = 0;
    const IoStatus s = read_available(w.from_fd, w.rx, std::size_t{1} << 22,
                                      appended);
    stats_.bytes_rx += appended;
    stats_.per_worker[w.index].bytes_rx += appended;
    WireFrame frame;
    while (w.alive && pop_frame(w.rx, frame)) handle_frame(w, std::move(frame));
    if (s != IoStatus::kOk) on_worker_death(w);
  };

  for (;;) {
    // Dispatch to every idle live worker.
    for (auto& w : workers_) {
      if (!w.alive || w.busy) continue;
      auto unit = take_next();
      if (!unit.has_value()) break;
      dispatch(w, std::move(*unit));
    }

    // No workers left: the coordinator drains the remaining units itself.
    if (live_workers() == 0) {
      for (;;) {
        auto unit = take_next();
        if (!unit.has_value()) break;
        run_inline(*unit);
      }
    }

    if (outstanding == 0) {
      bool pending_retry = false;
      for (const auto& u : retry) pending_retry |= unit_needed(u.unit_id);
      const bool more_feed =
          !feed_done && !(stop_bound.has_value() && next_id >= *stop_bound);
      if (!pending_retry && !more_feed) break;
      continue;  // back to dispatch (live workers exist, or inline drained)
    }

    // Poll the live workers: results to read, unit bytes still to write.
    std::vector<pollfd> fds;
    std::vector<Worker*> polled;
    auto poll_deadline = Clock::time_point::max();
    for (auto& w : workers_) {
      if (!w.alive) continue;
      short events = POLLIN;
      if (w.tx_off < w.tx.size()) events |= POLLOUT;
      fds.push_back(pollfd{w.from_fd, events, 0});
      polled.push_back(&w);
      if (w.busy) poll_deadline = std::min(poll_deadline, w.deadline);
    }
    // to_fd and from_fd are distinct descriptors; POLLOUT needs its own row.
    const std::size_t nin = fds.size();
    for (std::size_t i = 0; i < nin; ++i) {
      if (polled[i]->tx_off < polled[i]->tx.size()) {
        fds.push_back(pollfd{polled[i]->to_fd, POLLOUT, 0});
        polled.push_back(polled[i]);
      }
    }

    int wait_ms = 500;
    if (poll_deadline != Clock::time_point::max()) {
      const auto now = Clock::now();
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            poll_deadline - now)
                            .count();
      wait_ms = static_cast<int>(std::clamp<long long>(left, 0, 500));
    }
    if (!fds.empty()) {
      const int rc = ::poll(fds.data(), fds.size(), wait_ms);
      if (rc < 0 && errno != EINTR) {
        FTR_EXPECTS_MSG(false, "poll() failed in the sweep coordinator");
      }
      for (std::size_t i = 0; i < fds.size(); ++i) {
        Worker& w = *polled[i];
        if (!w.alive || fds[i].revents == 0) continue;
        if (i < nin && (fds[i].revents & (POLLIN | POLLHUP | POLLERR))) {
          handle_readable(w);
        } else if (i >= nin && (fds[i].revents & (POLLOUT | POLLERR))) {
          flush_tx(w);
        }
      }
    }

    // Watchdog: anyone past their deadline gets the hammer.
    if (has_timeout) {
      const auto now = Clock::now();
      for (auto& w : workers_) {
        if (w.alive && w.busy && now >= w.deadline) on_worker_timeout(w);
      }
    }
  }
}

SweepPartial DistSweepPool::run_sweep(
    const std::function<std::optional<UnitSpec>()>& feed) {
  std::vector<std::optional<SweepPartial>> sweeps;
  std::vector<std::optional<AdvPartial>> advs;
  run(feed, /*adversary=*/false, sweeps, advs);
  SweepPartial total;
  for (auto& s : sweeps) {
    FTR_EXPECTS_MSG(s.has_value(), "distributed sweep lost a unit");
    merge_sweep_partials(total, *s);
  }
  return total;
}

AdvPartial DistSweepPool::run_adv(
    const std::function<std::optional<UnitSpec>()>& feed) {
  std::vector<std::optional<SweepPartial>> sweeps;
  std::vector<std::optional<AdvPartial>> advs;
  run(feed, /*adversary=*/true, sweeps, advs);
  AdvPartial total;
  for (auto& a : advs) {
    if (total.stopped) break;  // later units were never needed
    FTR_EXPECTS_MSG(a.has_value(), "distributed search lost a unit");
    merge_adversary_partials(total, *a);
  }
  return total;
}

UnitSpec DistSweepPool::base_sweep_unit(
    UnitKind kind, const FaultSweepOptions& sweep_options) const {
  UnitSpec u;
  u.kind = kind;
  u.seed = sweep_options.seed;
  u.delivery_pairs = sweep_options.delivery_pairs;
  // kernel/lanes follow the sweep request; threads/batch/executor are the
  // pool's per-worker knobs. Progress is coordinator-side only — workers
  // never emit it.
  u.exec = sweep_options.exec;
  u.exec.threads = options_.exec.threads;
  u.exec.batch_size = options_.exec.batch_size;
  u.exec.executor = options_.exec.executor;
  u.exec.progress_every = 0;
  return u;
}

UnitSpec DistSweepPool::base_adv_unit(UnitKind kind, std::uint32_t f) const {
  UnitSpec u;
  u.kind = kind;
  u.f = f;
  u.exec = options_.exec;
  u.exec.progress_every = 0;
  return u;
}

SweepPartial DistSweepPool::sweep_exhaustive(
    std::size_t f, const FaultSweepOptions& sweep_options) {
  const std::uint64_t total = checked_total(snapshot_->table.num_nodes(), f);
  const std::uint64_t step = auto_unit_items(total);
  std::uint64_t pos = 0;
  return run_sweep([&]() -> std::optional<UnitSpec> {
    if (pos >= total) return std::nullopt;
    UnitSpec u = base_sweep_unit(UnitKind::kSweepGray, sweep_options);
    u.f = static_cast<std::uint32_t>(f);
    u.begin = pos;
    u.end = std::min(total, pos + step);
    pos = u.end;
    return u;
  });
}

SweepPartial DistSweepPool::sweep_sampled(
    std::size_t f, std::uint64_t count, const FaultSweepOptions& sweep_options) {
  const std::uint64_t step = auto_unit_items(count);
  std::uint64_t pos = 0;
  return run_sweep([&]() -> std::optional<UnitSpec> {
    if (pos >= count) return std::nullopt;
    UnitSpec u = base_sweep_unit(UnitKind::kSweepSampled, sweep_options);
    u.f = static_cast<std::uint32_t>(f);
    u.begin = pos;
    u.end = std::min(count, pos + step);
    pos = u.end;
    return u;
  });
}

SweepPartial DistSweepPool::sweep_source(
    FaultSetSource& source, const FaultSweepOptions& sweep_options) {
  const auto known = source.size();
  const std::uint64_t step =
      known.has_value() ? auto_unit_items(*known)
                        : (options_.unit_items > 0 ? options_.unit_items : 4096);
  std::uint64_t base = 0;
  bool done = false;
  std::vector<Node> set;
  return run_sweep([&]() -> std::optional<UnitSpec> {
    if (done) return std::nullopt;
    UnitSpec u = base_sweep_unit(UnitKind::kSweepExplicit, sweep_options);
    while (u.sets.size() < step && source.next(set)) u.sets.push_back(set);
    if (u.sets.empty()) {
      done = true;
      return std::nullopt;
    }
    u.begin = base;
    base += u.sets.size();
    u.end = base;
    return u;
  });
}

AdvPartial DistSweepPool::adv_gray(std::uint32_t f, std::uint32_t stop_above) {
  const std::uint64_t total = checked_total(snapshot_->table.num_nodes(), f);
  const std::uint64_t step = auto_unit_items(total);
  std::uint64_t pos = 0;
  return run_adv([&]() -> std::optional<UnitSpec> {
    if (pos >= total) return std::nullopt;
    UnitSpec u = base_adv_unit(UnitKind::kAdvGray, f);
    u.stop_above = stop_above;
    u.begin = pos;
    u.end = std::min(total, pos + step);
    pos = u.end;
    return u;
  });
}

AdvPartial DistSweepPool::adv_lex(std::uint32_t f, std::uint32_t stop_above) {
  const std::uint64_t total = checked_total(snapshot_->table.num_nodes(), f);
  const std::uint64_t step = auto_unit_items(total);
  std::uint64_t pos = 0;
  return run_adv([&]() -> std::optional<UnitSpec> {
    if (pos >= total) return std::nullopt;
    UnitSpec u = base_adv_unit(UnitKind::kAdvLex, f);
    u.stop_above = stop_above;
    u.begin = pos;
    u.end = std::min(total, pos + step);
    pos = u.end;
    return u;
  });
}

AdvPartial DistSweepPool::adv_sampled(std::uint32_t f, std::uint64_t samples,
                                      std::uint64_t seed) {
  const std::uint64_t step = auto_unit_items(samples);
  std::uint64_t pos = 0;
  return run_adv([&]() -> std::optional<UnitSpec> {
    if (pos >= samples) return std::nullopt;
    UnitSpec u = base_adv_unit(UnitKind::kAdvSampled, f);
    u.seed = seed;
    u.begin = pos;
    u.end = std::min(samples, pos + step);
    pos = u.end;
    return u;
  });
}

AdvPartial DistSweepPool::adv_climb(std::uint32_t f, std::uint64_t restarts,
                                    std::uint64_t seed, std::uint64_t max_steps,
                                    const std::vector<std::vector<Node>>& seeds) {
  // Mirrors the in-process wrapper: informed seeds extend the restart count.
  const std::uint64_t total = std::max<std::uint64_t>(restarts, seeds.size());
  const std::uint64_t step = auto_unit_items(total);
  std::uint64_t pos = 0;
  return run_adv([&]() -> std::optional<UnitSpec> {
    if (pos >= total) return std::nullopt;
    UnitSpec u = base_adv_unit(UnitKind::kAdvClimb, f);
    u.seed = seed;
    u.max_steps = max_steps;
    // Restart indices into `seeds` are global, so every unit carries the
    // full (tiny) seed list rather than a window-relative slice.
    u.climb_seeds = seeds;
    u.begin = pos;
    u.end = std::min(total, pos + step);
    pos = u.end;
    return u;
  });
}

ToleranceReport check_tolerance_distributed(DistSweepPool& pool,
                                            std::uint32_t f,
                                            std::uint32_t claimed_bound,
                                            Rng& rng,
                                            const ToleranceCheckOptions& options) {
  const TableSnapshot& snap = pool.snapshot();
  const std::size_t n = snap.table.num_nodes();
  if (f == 0) {
    // Degenerate: one evaluation of the empty set; nothing to distribute.
    return check_tolerance(snap.table, snap.index, f, claimed_bound, rng,
                           options);
  }

  // Mirror of the in-process table-level check, step for step: route-load
  // hill-climber seeds, ONE seed draw, then the same decision tree with each
  // search phase fanned over the pool.
  ToleranceCheckOptions opts = options;
  if (opts.seeds.empty() && f <= n) {
    const auto& ranked = snap.route_load_ranking;
    opts.seeds.emplace_back(ranked.begin(), ranked.begin() + f);
  }
  const std::uint64_t seed = rng();

  ToleranceReport report;
  report.claimed_bound = claimed_bound;
  report.faults = f;
  constexpr std::uint32_t kGrayFastPathMaxFaults = 3;
  if (binomial(n, f) <= opts.exhaustive_budget) {
    const AdvPartial p = (f <= kGrayFastPathMaxFaults && f <= n)
                             ? pool.adv_gray(f)
                             : pool.adv_lex(f);
    report.worst_diameter = p.any ? p.d : 0;
    report.worst_faults = p.faults;
    report.fault_sets_checked = p.evaluations;
    report.exhaustive = true;
  } else {
    const std::uint64_t sampled_seed = Rng::stream(seed, 1)();
    const std::uint64_t climb_seed = Rng::stream(seed, 2)();
    AdvPartial best = pool.adv_sampled(f, opts.samples, sampled_seed);
    AdvPartial climbed =
        pool.adv_climb(f, opts.hillclimb_restarts, climb_seed,
                       opts.hillclimb_steps, opts.seeds);
    std::uint32_t best_d = best.any ? best.d : 0;
    std::vector<Node> best_faults = std::move(best.faults);
    const std::uint32_t climbed_d = climbed.any ? climbed.d : 0;
    if (climbed_d > best_d) {
      best_d = climbed_d;
      best_faults = std::move(climbed.faults);
    }
    report.worst_diameter = best_d;
    report.worst_faults = std::move(best_faults);
    report.fault_sets_checked = best.evaluations + climbed.evaluations;
    report.exhaustive = false;
  }
  report.holds = report.worst_diameter <= claimed_bound;
  return report;
}

}  // namespace ftr
