#include "dist/worker.hpp"

#include <unistd.h>

#include <cstdlib>
#include <exception>
#include <memory>
#include <string>

#include "common/contracts.hpp"
#include "common/pipe_io.hpp"

namespace ftr {
namespace {

// One shared preprocessing, one scratch per worker chunk — the same
// evaluator shape check_tolerance uses, so a distributed check evaluates
// exactly what the in-process check would.
FaultEvaluatorFactory snapshot_evaluator_factory(const TableSnapshot& snapshot,
                                                 SrgKernel kernel) {
  const std::shared_ptr<const SrgIndex> index = snapshot.index;
  return [index, kernel]() {
    auto scratch = std::make_shared<SrgScratch>(*index);
    scratch->set_kernel(kernel);
    return [index, scratch](const std::vector<Node>& faults) {
      return scratch->surviving_diameter(faults);
    };
  };
}

}  // namespace

WorkerFailSpec parse_worker_fail_spec(const char* spec) {
  WorkerFailSpec out;
  if (spec == nullptr || *spec == '\0') return out;
  const std::string s(spec);
  const auto c1 = s.find(':');
  const auto c2 = s.find(':', c1 == std::string::npos ? c1 : c1 + 1);
  if (c1 == std::string::npos || c2 == std::string::npos) return out;
  const std::string mode = s.substr(0, c1);
  WorkerFailSpec::Mode m = WorkerFailSpec::Mode::kNone;
  if (mode == "exit") m = WorkerFailSpec::Mode::kExit;
  if (mode == "hang") m = WorkerFailSpec::Mode::kHang;
  if (m == WorkerFailSpec::Mode::kNone) return out;
  try {
    out.worker = static_cast<std::uint32_t>(
        std::stoul(s.substr(c1 + 1, c2 - c1 - 1)));
    out.unit_ordinal = std::stoull(s.substr(c2 + 1));
  } catch (const std::exception&) {
    return out;  // malformed numbers: injection disabled
  }
  out.mode = m;
  return out;
}

SweepPartial execute_sweep_unit(const TableSnapshot& snapshot,
                                const UnitSpec& unit) {
  FaultSweepOptions opts;
  opts.exec = unit.exec;
  opts.delivery_pairs = static_cast<std::size_t>(unit.delivery_pairs);
  opts.seed = unit.seed;
  switch (unit.kind) {
    case UnitKind::kSweepGray:
      return sweep_exhaustive_gray_range(snapshot.table, *snapshot.index,
                                         unit.f, unit.begin, unit.end, opts);
    case UnitKind::kSweepSampled: {
      SampledStreamSource source(snapshot.table.num_nodes(), unit.f,
                                 unit.end - unit.begin, unit.seed, unit.begin);
      return sweep_fault_source_partial(snapshot.table, *snapshot.index,
                                        source, unit.begin, opts);
    }
    case UnitKind::kSweepExplicit: {
      ExplicitListSource source(unit.sets);
      return sweep_fault_source_partial(snapshot.table, *snapshot.index,
                                        source, unit.begin, opts);
    }
    default:
      FTR_EXPECTS_MSG(false, "unit kind " << unit_kind_name(unit.kind)
                                          << " is not a sweep");
  }
  return {};
}

AdvPartial execute_adv_unit(const TableSnapshot& snapshot,
                            const UnitSpec& unit) {
  const std::size_t n = snapshot.table.num_nodes();
  const SearchExecution exec{unit.exec};
  switch (unit.kind) {
    case UnitKind::kAdvGray:
      return exhaustive_worst_faults_gray_slice(*snapshot.index, unit.f,
                                                unit.begin, unit.end, exec,
                                                unit.stop_above);
    case UnitKind::kAdvLex:
      return exhaustive_worst_faults_slice(
          n, unit.f, snapshot_evaluator_factory(snapshot, unit.exec.kernel),
          unit.begin, unit.end, exec, unit.stop_above);
    case UnitKind::kAdvSampled:
      return sampled_worst_faults_slice(
          n, unit.f, unit.begin, unit.end,
          snapshot_evaluator_factory(snapshot, unit.exec.kernel), unit.seed, exec);
    case UnitKind::kAdvClimb:
      return hillclimb_worst_faults_slice(
          n, unit.f, snapshot_evaluator_factory(snapshot, unit.exec.kernel),
          unit.seed, exec, unit.begin, unit.end,
          static_cast<std::size_t>(unit.max_steps), unit.climb_seeds);
    default:
      FTR_EXPECTS_MSG(false, "unit kind " << unit_kind_name(unit.kind)
                                          << " is not an adversary search");
  }
  return {};
}

int run_worker_loop(int in_fd, int out_fd, const TableSnapshot& snapshot,
                    std::uint32_t worker_index) {
  const WorkerFailSpec fail =
      parse_worker_fail_spec(std::getenv("FTROUTE_TEST_WORKER_FAIL"));
  std::uint64_t units_seen = 0;
  WireFrame frame;
  for (;;) {
    const IoStatus rs = read_frame(in_fd, frame);
    if (rs == IoStatus::kClosed) return 0;  // coordinator closed: clean exit
    if (rs != IoStatus::kOk) return 3;
    if (frame.type != FrameType::kUnit) return 4;
    std::uint64_t unit_id = ~std::uint64_t{0};
    try {
      const UnitSpec unit = decode_unit(frame.payload);
      unit_id = unit.unit_id;
      const std::uint64_t ordinal = units_seen++;
      if (fail.mode != WorkerFailSpec::Mode::kNone &&
          fail.worker == worker_index && fail.unit_ordinal == ordinal) {
        if (fail.mode == WorkerFailSpec::Mode::kExit) return 7;
        for (;;) ::pause();  // until the coordinator's watchdog SIGKILLs us
      }
      std::vector<unsigned char> reply;
      if (unit_is_sweep(unit.kind)) {
        reply = pack_frame(
            FrameType::kSweepResult,
            encode_sweep_result(unit_id, execute_sweep_unit(snapshot, unit)));
      } else {
        reply = pack_frame(
            FrameType::kAdvResult,
            encode_adv_result(unit_id, execute_adv_unit(snapshot, unit)));
      }
      if (write_exact(out_fd, reply.data(), reply.size()) != IoStatus::kOk) {
        return 5;
      }
    } catch (const std::exception& e) {
      const auto reply =
          pack_frame(FrameType::kError, encode_error(unit_id, e.what()));
      (void)write_exact(out_fd, reply.data(), reply.size());
      return 6;
    }
  }
}

}  // namespace ftr
