#include <iostream>
#include <string>
#include <vector>

#include "analysis/stretch.hpp"
#include "cli/cli.hpp"
#include "cli/cli_support.hpp"
#include "common/table.hpp"

namespace ftr::cli {
namespace {

using namespace ftr;

const VerbSpec& spec() {
  static const VerbSpec s{
      .name = "stretch",
      .positional = "<graph> <table>",
      .summary =
          "compare every route against the shortest path: stretch,\n"
          "  shortest-route counts, worst detour",
      .flags = {},
      .exec_mask = 0,
      .min_positional = 2,
      .max_positional = 2,
      .notes =
          "<graph>/<table> accept text files or binary snapshots (sniffed\n"
          "by magic)\n",
  };
  return s;
}

}  // namespace

int cmd_stretch(const std::vector<std::string>& args) {
  return run_verb(spec(), args, [](const ParsedArgs& a) {
    auto [g, table] =
        load_graph_table_args(a.positional.at(0), a.positional.at(1));
    const auto s = measure_stretch(g, table);
    Table t({"metric", "value"});
    t.add_row({"routes", Table::cell(s.routes)});
    t.add_row({"avg stretch", Table::cell(s.avg_stretch, 3)});
    t.add_row({"max stretch", Table::cell(s.max_stretch, 3)});
    t.add_row({"shortest routes", Table::cell(s.shortest_routes)});
    t.add_row({"max route hops", Table::cell(s.max_route_hops)});
    t.add_row({"max detour (hops)", Table::cell(s.max_detour)});
    t.print(std::cout);
    return 0;
  });
}

}  // namespace ftr::cli
