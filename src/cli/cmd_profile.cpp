#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "analysis/properties.hpp"
#include "cli/cli.hpp"
#include "cli/cli_support.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/planner.hpp"
#include "graph/bfs.hpp"
#include "graph/graph_io.hpp"

namespace ftr::cli {
namespace {

using namespace ftr;

const VerbSpec& spec() {
  static const VerbSpec s{
      .name = "profile",
      .positional = "",
      .summary =
          "profile a graph read from stdin (degrees, connectivity, girth,\n"
          "  diameter, neighborhood sets) and show the planned construction",
      .flags = {},
      .exec_mask = 0,
      .min_positional = 0,
      .max_positional = 0,
  };
  return s;
}

}  // namespace

int cmd_profile(const std::vector<std::string>& args) {
  return run_verb(spec(), args, [](const ParsedArgs&) {
    const Graph g = load_graph(std::cin);
    Rng rng(1);
    const auto profile = profile_graph(g, std::nullopt, rng);
    Table t({"metric", "value"});
    t.add_row({"nodes", Table::cell(profile.n)});
    t.add_row({"edges", Table::cell(profile.m)});
    t.add_row({"min/max degree", Table::cell(profile.min_degree) + "/" +
                                     Table::cell(profile.max_degree)});
    t.add_row({"connectivity (t+1)", Table::cell(profile.connectivity)});
    t.add_row({"girth", profile.girth == kUnreachable
                            ? "none"
                            : Table::cell(profile.girth)});
    t.add_row({"diameter", Table::cell(profile.diameter)});
    t.add_row(
        {"neighborhood set K", Table::cell(profile.neighborhood_set_size)});
    t.add_row({"two-trees", Table::cell(profile.two_trees.has_value())});
    t.print(std::cout);
    if (profile.kernel_applicable) {
      const auto plan = plan_routing(profile);
      std::cout << "\nplan: " << construction_name(plan.construction)
                << " -> (d <= " << plan.guaranteed_diameter
                << ", f <= " << plan.tolerated_faults << ")\n  "
                << plan.rationale << '\n';
    } else {
      std::cout << "\nplan: none (graph complete, trivial, or disconnected)\n";
    }
    return 0;
  });
}

}  // namespace ftr::cli
