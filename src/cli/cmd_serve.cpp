#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.hpp"
#include "cli/cli_support.hpp"
#include "serve/request_router.hpp"
#include "serve/table_registry.hpp"

namespace ftr::cli {
namespace {

using namespace ftr;

const VerbSpec& spec() {
  static const VerbSpec s{
      .name = "serve",
      .positional = "",
      .summary =
          "answer check|sweep|delivery|certify request lines over a named\n"
          "  table manifest, one response line per request, in order",
      .flags =
          {
              {"--tables", "MANIFEST", "table manifest file (required)"},
              {"--requests", "FILE", "request lines file"},
              {"--stdin", nullptr, "read request lines from stdin"},
              {"--max-resident-bytes", "B",
               "LRU-evict built tables past this budget (0 = unlimited)"},
          },
      .exec_mask = kExecFlagsAll,
      .exec_defaults = {.batch_size = 64},
      .min_positional = 0,
      .max_positional = 0,
      .notes =
          "exactly one of --requests FILE or --stdin is required\n"
          "manifest lines: table <name> graph=<file> [routes=<file>] "
          "[seed=S]\n"
          "                table <name> snapshot=<file> "
          "[snapshot_load=bulk|mmap]\n"
          "request lines:  check|sweep|delivery|certify <table> "
          "[key=value...]\n",
  };
  return s;
}

}  // namespace

int cmd_serve(const std::vector<std::string>& args) {
  return run_verb(spec(), args, [](const ParsedArgs& a) {
    const std::string tables_path = a.str("--tables", "");
    if (tables_path.empty()) {
      throw UsageError("serve needs --tables MANIFEST");
    }
    const std::string requests_path = a.str("--requests", "");
    const bool from_stdin = a.has("--stdin");
    if (requests_path.empty() == !from_stdin) {
      throw UsageError("serve needs exactly one of --requests FILE or --stdin");
    }

    TableRegistryOptions ropts;
    ropts.max_resident_bytes =
        static_cast<std::size_t>(a.u64("--max-resident-bytes", 0));
    TableRegistry registry(ropts);
    {
      std::ifstream mf(tables_path);
      if (!mf) {
        std::cerr << "cannot open tables manifest " << tables_path << '\n';
        return 2;
      }
      const auto defined = load_table_manifest(mf, registry);
      std::cerr << "registry: " << defined << " table(s) defined";
      if (ropts.max_resident_bytes > 0) {
        std::cerr << ", budget " << ropts.max_resident_bytes << " bytes";
      }
      std::cerr << '\n';
    }

    ServeOptions sopts;
    sopts.exec = a.exec;
    if (sopts.exec.progress_every > 0) {
      // Progress is telemetry: stderr only, so stdout keeps the
      // bit-identical contract across threads/batches/progress settings.
      sopts.on_progress = [](const ServeProgress& p) {
        std::cerr << "  ... " << p.requests_done << " requests, "
                  << static_cast<std::uint64_t>(
                         p.seconds > 0.0
                             ? static_cast<double>(p.requests_done) / p.seconds
                             : 0.0)
                  << " req/sec; registry hits=" << p.registry.hits
                  << " builds=" << p.registry.builds
                  << " snapshot_loads=" << p.registry.snapshot_loads
                  << " evictions=" << p.registry.evictions
                  << " resident_bytes=" << p.registry.resident_bytes
                  << "; executor " << executor_stats_str(p.executor) << '\n';
      };
    }

    ServeSummary summary;
    if (from_stdin) {
      IstreamRequestSource source(std::cin);
      summary = serve_requests(registry, source, std::cout, sopts);
    } else {
      std::ifstream rf(requests_path);
      if (!rf) {
        std::cerr << "cannot open requests file " << requests_path << '\n';
        return 2;
      }
      IstreamRequestSource source(rf);
      summary = serve_requests(registry, source, std::cout, sopts);
    }

    // Timing and registry churn are scheduling/budget-dependent, so they go
    // to stderr: stdout stays bit-identical for any --threads/--batch value.
    std::cerr << "served " << summary.requests << " request(s) ("
              << summary.checks << " check, " << summary.sweeps << " sweep, "
              << summary.deliveries << " delivery, " << summary.certifies
              << " certify, " << summary.errors << " error) on "
              << summary.threads_used << " thread(s): "
              << static_cast<std::uint64_t>(summary.requests_per_sec)
              << " req/sec\n"
              << "registry: hits=" << summary.registry.hits
              << " misses=" << summary.registry.misses
              << " builds=" << summary.registry.builds
              << " snapshot_loads=" << summary.registry.snapshot_loads
              << " evictions=" << summary.registry.evictions
              << " resident=" << summary.registry.resident_tables
              << " table(s), " << summary.registry.resident_bytes << " bytes\n"
              << "executor: " << executor_stats_str(summary.executor) << '\n';
    return summary.errors == 0 ? 0 : 1;
  });
}

}  // namespace ftr::cli
