// Shared CLI plumbing: the per-verb flag registry + strict parser, usage
// generation, and the helpers every verb leans on (snapshot-aware file
// loading, distributed-pool option mapping, telemetry rendering).
//
// The contract every verb gets from run_verb():
//   * `--help` prints usage generated from the verb's registry (stdout,
//     exit 0) — no other work happens;
//   * an unknown flag, a missing flag value, or a malformed value raises
//     UsageError: the message and the verb's usage go to stderr, exit 2;
//   * any other exception prints "error: <what>" to stderr, exit 1;
//   * execution knobs parse through parse_exec_flag() against the verb's
//     ExecFlagBit mask, so `--threads/--kernel/--lanes/--batch/--executor/
//     --progress-every` mean the same thing on every verb that has them
//     (common/exec_policy.hpp is the single resolution authority).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/exec_policy.hpp"
#include "common/parallel.hpp"
#include "dist/coordinator.hpp"
#include "graph/graph.hpp"
#include "routing/route_table.hpp"

namespace ftr::cli {

/// A verb-specific flag. value_name == nullptr marks a boolean flag (no
/// value token follows it).
struct VerbFlag {
  const char* flag;
  const char* value_name;  // nullptr: boolean presence flag
  const char* help;
};

struct VerbSpec {
  const char* name;        // "sweep"
  const char* positional;  // "<graph> <table>" or "" when none
  const char* summary;     // one-line description for usage
  std::vector<VerbFlag> flags;
  /// ExecFlagBit mask of execution-policy flags this verb accepts.
  unsigned exec_mask = 0;
  /// Verb-specific ExecPolicy starting point (e.g. serve batches 64).
  ExecPolicy exec_defaults;
  std::size_t min_positional = 0;
  std::size_t max_positional = 0;
  const char* notes = nullptr;  // free-form trailing usage text
};

/// Raised for malformed command lines; run_verb turns it into exit 2 with
/// the verb's usage on stderr.
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct ParsedArgs {
  std::vector<std::string> positional;
  ExecPolicy exec;
  /// Verb flag occurrences: flag -> raw value ("" for boolean flags).
  /// First occurrence wins, matching the historical scan order.
  std::map<std::string, std::string> values;

  bool has(const std::string& flag) const;
  std::string str(const std::string& flag, const std::string& fallback) const;
  /// Strict full-token base-10; throws UsageError on malformed values so
  /// "--sets 12frog" is exit 2, never a truncated 12.
  std::uint64_t u64(const std::string& flag, std::uint64_t fallback) const;
  /// Range-checked narrowing: "--faults 4294967296" must be rejected, not
  /// silently wrap.
  std::uint32_t u32(const std::string& flag, std::uint32_t fallback) const;
};

/// Usage text generated from the registry: synopsis, verb flags, exec
/// flags (exec_policy_usage over the verb's mask), then notes.
std::string verb_usage(const VerbSpec& spec);

/// Strict parse: every "--flag" token must match the verb registry or the
/// verb's exec mask, else UsageError. Non-flag tokens are positionals,
/// bounds-checked against the spec.
ParsedArgs parse_verb_args(const VerbSpec& spec,
                           const std::vector<std::string>& args);

/// The uniform verb wrapper (see the contract at the top of this header).
int run_verb(const VerbSpec& spec, const std::vector<std::string>& args,
             const std::function<int(const ParsedArgs&)>& body);

// ---- helpers shared across verbs ----------------------------------------

/// Stderr rendering of the work-stealing probe, shared by the sweep/serve
/// progress lines and their closing summaries (telemetry only — it never
/// touches stdout, which stays bit-identical across execution knobs).
std::string executor_stats_str(const ExecutorStats& e);

/// The <graph>/<table> file arguments accept either the text formats or a
/// binary snapshot (sniffed by magic). A snapshot passed as both arguments
/// is loaded once.
Graph load_graph_arg(const std::string& path);
RoutingTable load_table_arg(const std::string& path);

struct GraphTableArgs {
  Graph graph;
  RoutingTable table;
};
GraphTableArgs load_graph_table_args(const std::string& graph_path,
                                     const std::string& table_path);

/// Shared --workers plumbing for check/sweep: the verb's resolved
/// ExecPolicy becomes the per-worker policy (exec.threads = threads inside
/// each forked worker). The pool's knobs never affect stdout (the
/// bit-identity contract); they only shape scheduling.
DistPoolOptions dist_pool_options(const ParsedArgs& a, unsigned workers);

/// When the table came from a snapshot file, workers mmap that same file —
/// zero bytes shipped; otherwise the coordinator stages the snapshot into
/// an unlinked temp file the forked workers inherit by fd.
std::string dist_snapshot_path(const std::string& graph_path,
                               const std::string& table_path);

void print_dist_stats(const DistStats& s);

}  // namespace ftr::cli
