#include "cli/cli_support.hpp"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <limits>

#include "cli/cli.hpp"
#include "common/parse.hpp"
#include "graph/graph_io.hpp"
#include "routing/serialization.hpp"

namespace ftr::cli {

bool ParsedArgs::has(const std::string& flag) const {
  return values.find(flag) != values.end();
}

std::string ParsedArgs::str(const std::string& flag,
                            const std::string& fallback) const {
  const auto it = values.find(flag);
  return it == values.end() ? fallback : it->second;
}

std::uint64_t ParsedArgs::u64(const std::string& flag,
                              std::uint64_t fallback) const {
  const auto it = values.find(flag);
  if (it == values.end()) return fallback;
  const auto v = parse_u64(it->second);
  if (!v.has_value()) {
    throw UsageError("bad value '" + it->second + "' for " + flag);
  }
  return *v;
}

std::uint32_t ParsedArgs::u32(const std::string& flag,
                              std::uint32_t fallback) const {
  const std::uint64_t v = u64(flag, fallback);
  if (v > std::numeric_limits<std::uint32_t>::max()) {
    throw UsageError("value too large for " + flag);
  }
  return static_cast<std::uint32_t>(v);
}

std::string verb_usage(const VerbSpec& spec) {
  std::string out = "usage: ftroute ";
  out += spec.name;
  if (spec.positional[0] != '\0') {
    out += ' ';
    out += spec.positional;
  }
  if (!spec.flags.empty() || spec.exec_mask != 0) out += " [flags]";
  out += '\n';
  out += "  ";
  out += spec.summary;
  out += '\n';
  if (!spec.flags.empty()) {
    out += "\nflags:\n";
    for (const VerbFlag& f : spec.flags) {
      std::string head = "  ";
      head += f.flag;
      if (f.value_name != nullptr) {
        head += ' ';
        head += f.value_name;
      }
      if (head.size() < 22) head.resize(22, ' ');
      out += head;
      out += "  ";
      out += f.help;
      out += '\n';
    }
  }
  if (spec.exec_mask != 0) {
    out += "\nexecution policy (see src/common/exec_policy.hpp):\n";
    out += exec_policy_usage(spec.exec_mask);
  }
  if (spec.notes != nullptr) {
    out += '\n';
    out += spec.notes;
  }
  return out;
}

ParsedArgs parse_verb_args(const VerbSpec& spec,
                           const std::vector<std::string>& args) {
  ParsedArgs out;
  out.exec = spec.exec_defaults;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a.rfind("--", 0) != 0) {
      out.positional.push_back(a);
      continue;
    }
    const auto vf = std::find_if(
        spec.flags.begin(), spec.flags.end(),
        [&](const VerbFlag& f) { return a == f.flag; });
    if (vf != spec.flags.end()) {
      if (vf->value_name == nullptr) {
        out.values.emplace(a, "");
        continue;
      }
      if (i + 1 >= args.size()) throw UsageError("missing value for " + a);
      out.values.emplace(a, args[i + 1]);
      ++i;
      continue;
    }
    ExecFlagParse ep;
    try {
      ep = parse_exec_flag(spec.exec_mask, args, i, out.exec);
    } catch (const UsageError&) {
      throw;
    } catch (const std::exception& e) {
      // The exec registry's missing/bad-value complaints are command-line
      // problems: exit 2 with usage, like every other parse failure.
      throw UsageError(e.what());
    }
    if (ep.matched) {
      i += ep.consumed - 1;
      continue;
    }
    throw UsageError("unknown flag '" + a + "' for " + spec.name);
  }
  if (out.positional.size() < spec.min_positional) {
    throw UsageError(std::string(spec.name) + " needs " + spec.positional);
  }
  if (out.positional.size() > spec.max_positional) {
    throw UsageError("unexpected argument '" +
                     out.positional[spec.max_positional] + "' for " +
                     spec.name);
  }
  return out;
}

int run_verb(const VerbSpec& spec, const std::vector<std::string>& args,
             const std::function<int(const ParsedArgs&)>& body) {
  if (std::find(args.begin(), args.end(), "--help") != args.end()) {
    std::cout << verb_usage(spec);
    return 0;
  }
  try {
    return body(parse_verb_args(spec, args));
  } catch (const UsageError& e) {
    std::cerr << "error: " << e.what() << "\n\n" << verb_usage(spec);
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}

std::string executor_stats_str(const ExecutorStats& e) {
  return "local=" + std::to_string(e.chunks_local) +
         " stolen=" + std::to_string(e.chunks_stolen) +
         " steals=" + std::to_string(e.steals) +
         " steal_attempts=" + std::to_string(e.steal_attempts);
}

Graph load_graph_arg(const std::string& path) {
  if (is_snapshot_file(path)) {
    return std::move(load_table_snapshot_file(path).graph);
  }
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open graph file '" + path + "'");
  return load_graph(f);
}

RoutingTable load_table_arg(const std::string& path) {
  if (is_snapshot_file(path)) {
    return std::move(load_table_snapshot_file(path).table);
  }
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open table file '" + path + "'");
  return load_routing_table(f);
}

GraphTableArgs load_graph_table_args(const std::string& graph_path,
                                     const std::string& table_path) {
  if (graph_path == table_path && is_snapshot_file(graph_path)) {
    TableSnapshot snap = load_table_snapshot_file(graph_path);
    return {std::move(snap.graph), std::move(snap.table)};
  }
  return {load_graph_arg(graph_path), load_table_arg(table_path)};
}

DistPoolOptions dist_pool_options(const ParsedArgs& a, unsigned workers) {
  DistPoolOptions popts;
  popts.workers = workers;
  popts.unit_items = a.u64("--worker-batch", 0);
  popts.exec = a.exec;
  popts.unit_timeout_sec =
      static_cast<double>(a.u64("--worker-timeout", 300));
  return popts;
}

std::string dist_snapshot_path(const std::string& graph_path,
                               const std::string& table_path) {
  return (graph_path == table_path && is_snapshot_file(graph_path))
             ? graph_path
             : std::string();
}

void print_dist_stats(const DistStats& s) {
  std::cerr << "distributed: " << s.workers_spawned << " worker(s); units "
            << s.units_dispatched << " dispatched, " << s.units_completed
            << " completed, " << s.units_retried << " retried, "
            << s.units_inline << " inline; " << s.bytes_tx << " bytes tx, "
            << s.bytes_rx << " bytes rx; " << s.workers_exited << " exited, "
            << s.workers_killed << " killed\n";
  for (std::size_t i = 0; i < s.per_worker.size(); ++i) {
    const auto& w = s.per_worker[i];
    if (w.units == 0) continue;
    const auto rate = w.busy_seconds > 0.0
                          ? static_cast<std::uint64_t>(
                                static_cast<double>(w.items) / w.busy_seconds)
                          : 0;
    std::cerr << "  worker " << i << ": " << w.units << " unit(s), " << w.items
              << " item(s), " << rate << " items/sec\n";
  }
}

namespace {

int global_usage() {
  std::cerr <<
      "usage: ftroute <verb> [args...]   (run 'ftroute <verb> --help' for "
      "per-verb flags)\n"
      "  gen <family> <args...>      generate a graph to stdout\n"
      "  profile                     profile a graph on stdin\n"
      "  build                       build a routing (graph on stdin, table "
      "to stdout)\n"
      "  check <graph> <table>       check a claimed fault tolerance\n"
      "  sweep <graph> <table>       sweep fault sets, streaming\n"
      "  serve                       answer request lines over a table "
      "manifest\n"
      "  stretch <graph> <table>     route-vs-distance stretch report\n"
      "  snapshot                    write the binary table snapshot\n"
      "families for gen: cycle n | torus r c | grid r c | hypercube d | "
      "ccc d |\n"
      "  wbf d | butterfly d | debruijn d | se d | petersen | dodecahedron "
      "|\n"
      "  desargues | gp n k | gnp n p seed | rr n d seed\n";
  return 2;
}

}  // namespace

int run_cli(const std::vector<std::string>& args) {
  if (args.empty()) return global_usage();
  const std::string cmd = args.front();
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  if (cmd == "gen") return cmd_gen(rest);
  if (cmd == "profile") return cmd_profile(rest);
  if (cmd == "build") return cmd_build(rest);
  if (cmd == "check") return cmd_check(rest);
  if (cmd == "sweep") return cmd_sweep(rest);
  if (cmd == "serve") return cmd_serve(rest);
  if (cmd == "stretch") return cmd_stretch(rest);
  if (cmd == "snapshot") return cmd_snapshot(rest);
  return global_usage();
}

}  // namespace ftr::cli
