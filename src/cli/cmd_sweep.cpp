#include <chrono>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/fault_sweep.hpp"
#include "cli/cli.hpp"
#include "cli/cli_support.hpp"
#include "common/table.hpp"
#include "dist/coordinator.hpp"
#include "graph/bfs.hpp"
#include "routing/serialization.hpp"

namespace ftr::cli {
namespace {

using namespace ftr;

const VerbSpec& spec() {
  static const VerbSpec s{
      .name = "sweep",
      .positional = "<graph> <table>",
      .summary =
          "sweep fault sets against a routing, streaming at constant\n"
          "  memory, and report the surviving-diameter distribution",
      .flags =
          {
              {"--faults", "F", "faults per sampled/exhaustive set (default 1)"},
              {"--sets", "N", "sampled fault sets (default 1000)"},
              {"--seed", "S", "sampling stream seed (default 7)"},
              {"--exhaustive", nullptr,
               "sweep all C(n,F) sets (revolving-door incremental\n"
               "        evaluation)"},
              {"--stdin", nullptr,
               "read one fault set per line from stdin (whitespace-\n"
               "        separated node ids, '#' comments)"},
              {"--delivery-pairs", "P",
               "also sample P delivery pairs per fault set (default 0)"},
              {"--workers", "W",
               "fork W snapshot-fed worker processes (each running\n"
               "        --threads threads); 0 = in-process (default)"},
              {"--worker-batch", "R",
               "task items per distributed unit (0 = auto)"},
              {"--worker-timeout", "S",
               "per-unit seconds before a hung worker is killed\n"
               "        (default 300, 0 = off)"},
          },
      .exec_mask = kExecFlagsAll,
      .min_positional = 2,
      .max_positional = 2,
      .notes =
          "<graph>/<table> accept text files or binary snapshots (sniffed\n"
          "by magic). Stdout is bit-identical across every execution knob\n"
          "and any --workers/--worker-batch split; timings, progress, and\n"
          "executor telemetry go to stderr\n",
  };
  return s;
}

}  // namespace

int cmd_sweep(const std::vector<std::string>& args) {
  return run_verb(spec(), args, [](const ParsedArgs& a) {
    auto [g, table] =
        load_graph_table_args(a.positional.at(0), a.positional.at(1));
    table.validate(g);
    const auto f = static_cast<std::size_t>(a.u64("--faults", 1));
    const auto sets = a.u64("--sets", 1000);
    const std::uint64_t seed = a.u64("--seed", 7);
    const bool from_stdin = a.has("--stdin");
    const bool exhaustive = a.has("--exhaustive");
    if (from_stdin && exhaustive) {
      throw UsageError("--stdin and --exhaustive are mutually exclusive");
    }

    FaultSweepOptions opts;
    opts.exec = a.exec;
    opts.delivery_pairs =
        static_cast<std::size_t>(a.u64("--delivery-pairs", 0));
    opts.seed = seed;
    if (opts.exec.progress_every > 0) {
      // Progress is telemetry: stderr only, so stdout keeps the
      // bit-identical contract across threads/batches/progress settings.
      opts.on_progress = [](const FaultSweepProgress& p) {
        std::cerr << "  ... " << p.sets_done << " sets, worst=";
        if (p.worst_diameter == kUnreachable) {
          std::cerr << "disconnected";
        } else {
          std::cerr << p.worst_diameter;
        }
        std::cerr << ", disconnected=" << p.disconnected << ", "
                  << static_cast<std::uint64_t>(
                         p.seconds > 0.0
                             ? static_cast<double>(p.sets_done) / p.seconds
                             : 0.0)
                  << " sets/sec; executor " << executor_stats_str(p.executor)
                  << '\n';
      };
    }

    const auto workers = a.u32("--workers", 0);
    FaultSweepSummary summary;
    if (workers > 0) {
      // Multi-process fan-out: the partition into units and their merge use
      // the same global-index discipline as the in-process engine, so
      // stdout below is bit-identical to --workers 0 for any W and unit
      // size.
      const std::size_t n = g.num_nodes();
      const std::string snap_path =
          dist_snapshot_path(a.positional.at(0), a.positional.at(1));
      const TableSnapshot snap =
          make_table_snapshot(std::move(g), std::move(table));
      DistSweepPool pool(snap, snap_path, dist_pool_options(a, workers));
      const auto t0 = std::chrono::steady_clock::now();
      SweepPartial partial;
      if (exhaustive) {
        partial = pool.sweep_exhaustive(f, opts);
      } else if (from_stdin) {
        IstreamFaultSetSource source(std::cin, n);
        partial = pool.sweep_source(source, opts);
      } else {
        partial = pool.sweep_sampled(f, sets, opts);
      }
      summary = summarize_sweep_partial(partial);
      summary.threads_used = opts.exec.threads;
      summary.seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      summary.fault_sets_per_sec =
          summary.seconds > 0.0
              ? static_cast<double>(summary.total_sets) / summary.seconds
              : 0.0;
      print_dist_stats(pool.stats());
    } else if (exhaustive) {
      const SrgIndex index(table);
      summary = sweep_exhaustive_gray(table, index, f, opts);
    } else if (from_stdin) {
      const SrgIndex index(table);
      IstreamFaultSetSource source(std::cin, g.num_nodes());
      summary = sweep_fault_source(table, index, source, opts);
    } else {
      // Set i is a pure function of (seed, i): the stream is reproducible
      // and never materialized, whatever --sets is.
      const SrgIndex index(table);
      SampledStreamSource source(g.num_nodes(), f, sets, seed);
      summary = sweep_fault_source(table, index, source, opts);
    }

    Table t({"metric", "value"});
    t.add_row({"fault sets", Table::cell(summary.total_sets)});
    if (!from_stdin) t.add_row({"faults per set", Table::cell(f)});
    t.add_row({"disconnected sets", Table::cell(summary.disconnected)});
    t.add_row({"worst diameter", summary.worst_diameter == kUnreachable
                                     ? "disconnected"
                                     : Table::cell(summary.worst_diameter)});
    if (opts.delivery_pairs > 0) {
      t.add_row({"pairs sampled", Table::cell(summary.pairs_sampled)});
      t.add_row({"delivered", Table::cell(summary.delivered)});
      t.add_row({"avg route hops", Table::cell(summary.avg_route_hops, 3)});
      t.add_row({"max route hops", Table::cell(summary.max_route_hops)});
      t.add_row({"max edge hops", Table::cell(summary.max_edge_hops)});
    }
    t.print(std::cout);

    std::cout << "\ndiameter histogram:\n";
    for (std::uint32_t d = 0; d < summary.diameter_histogram.size(); ++d) {
      if (summary.diameter_histogram[d] == 0) continue;
      std::cout << "  d=" << d << ": " << summary.diameter_histogram[d]
                << '\n';
    }
    if (summary.disconnected > 0) {
      std::cout << "  disconnected: " << summary.disconnected << '\n';
    }
    if (summary.total_sets > 0) {
      std::cout << "worst fault set (#" << summary.worst_index << "):";
      for (Node v : summary.worst_faults) std::cout << ' ' << v;
      std::cout << '\n';
    }

    // Timing and executor telemetry are scheduling-dependent, so they go to
    // stderr: stdout stays bit-identical for any --threads value.
    std::cerr << "swept " << summary.total_sets << " fault sets on "
              << summary.threads_used << " thread(s): "
              << static_cast<std::uint64_t>(summary.fault_sets_per_sec)
              << " fault-sets/sec\n"
              << "executor: " << executor_stats_str(summary.executor) << '\n';
    return 0;
  });
}

}  // namespace ftr::cli
