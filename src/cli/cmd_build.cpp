#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "cli/cli.hpp"
#include "cli/cli_support.hpp"
#include "common/rng.hpp"
#include "core/planner.hpp"
#include "fault/tolerance_check.hpp"
#include "graph/graph_io.hpp"
#include "routing/serialization.hpp"

namespace ftr::cli {
namespace {

using namespace ftr;

const VerbSpec& spec() {
  static const VerbSpec s{
      .name = "build",
      .positional = "",
      .summary =
          "build a routing for the graph on stdin and write the table to\n"
          "  stdout (plan details on stderr)",
      .flags =
          {
              {"--seed", "S", "planner RNG seed (default 42)"},
              {"--certify", nullptr,
               "also check the plan's claimed tolerance and exit nonzero\n"
               "        when the certificate fails"},
          },
      .exec_mask = kExecFlagThreads | kExecFlagKernel | kExecFlagLanes |
                   kExecFlagExecutor,
      .min_positional = 0,
      .max_positional = 0,
      .notes =
          "execution flags apply to the --certify check; the build itself\n"
          "is deterministic in --seed alone\n",
  };
  return s;
}

}  // namespace

int cmd_build(const std::vector<std::string>& args) {
  return run_verb(spec(), args, [](const ParsedArgs& a) {
    const Graph g = load_graph(std::cin);
    Rng rng(a.u64("--seed", 42));
    if (a.has("--certify")) {
      ToleranceCheckOptions opts;
      opts.exec = a.exec;
      const auto certified =
          build_certified_routing(g, std::nullopt, rng, opts);
      const auto& planned = certified.routing;
      std::cerr << "built " << construction_name(planned.plan.construction)
                << " routing: (d <= " << planned.plan.guaranteed_diameter
                << ", f <= " << planned.plan.tolerated_faults << "), "
                << planned.table.num_routes() << " directed routes\n"
                << "certificate: " << certified.certificate.summary() << '\n';
      save_routing_table(planned.table, std::cout);
      return certified.certificate.holds ? 0 : 1;
    }
    const auto planned = build_planned_routing(g, std::nullopt, rng);
    std::cerr << "built " << construction_name(planned.plan.construction)
              << " routing: (d <= " << planned.plan.guaranteed_diameter
              << ", f <= " << planned.plan.tolerated_faults << "), "
              << planned.table.num_routes() << " directed routes\n";
    save_routing_table(planned.table, std::cout);
    return 0;
  });
}

}  // namespace ftr::cli
