#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "cli/cli.hpp"
#include "cli/cli_support.hpp"
#include "common/rng.hpp"
#include "dist/coordinator.hpp"
#include "fault/tolerance_check.hpp"
#include "routing/serialization.hpp"

namespace ftr::cli {
namespace {

using namespace ftr;

const VerbSpec& spec() {
  static const VerbSpec s{
      .name = "check",
      .positional = "<graph> <table>",
      .summary =
          "check a claimed fault tolerance: exit 0 when the claimed\n"
          "  diameter bound holds under every probed fault set, 1 otherwise",
      .flags =
          {
              {"--faults", "F", "fault budget to probe (default 1)"},
              {"--claimed", "D", "claimed surviving diameter bound (default 6)"},
              {"--seed", "S", "search RNG seed (default 7)"},
              {"--workers", "W",
               "fork W snapshot-fed worker processes (each running\n"
               "        --threads threads); 0 = in-process (default)"},
              {"--worker-batch", "R",
               "task items per distributed unit (0 = auto)"},
              {"--worker-timeout", "S",
               "per-unit seconds before a hung worker is killed\n"
               "        (default 300, 0 = off)"},
          },
      .exec_mask = kExecFlagThreads | kExecFlagKernel | kExecFlagLanes |
                   kExecFlagExecutor,
      .min_positional = 2,
      .max_positional = 2,
      .notes =
          "<graph>/<table> accept text files or binary snapshots (sniffed\n"
          "by magic); stdout is bit-identical for any worker count\n",
  };
  return s;
}

}  // namespace

int cmd_check(const std::vector<std::string>& args) {
  return run_verb(spec(), args, [](const ParsedArgs& a) {
    auto [g, table] =
        load_graph_table_args(a.positional.at(0), a.positional.at(1));
    table.validate(g);
    const auto f = a.u32("--faults", 1);
    const auto claimed = a.u32("--claimed", 6);
    Rng rng(a.u64("--seed", 7));
    ToleranceCheckOptions opts;
    opts.exec = a.exec;
    const auto workers = a.u32("--workers", 0);
    ToleranceReport report;
    if (workers > 0) {
      const std::string snap_path =
          dist_snapshot_path(a.positional.at(0), a.positional.at(1));
      const TableSnapshot snap =
          make_table_snapshot(std::move(g), std::move(table));
      DistSweepPool pool(snap, snap_path, dist_pool_options(a, workers));
      report = check_tolerance_distributed(pool, f, claimed, rng, opts);
      print_dist_stats(pool.stats());
    } else {
      report = check_tolerance(table, f, claimed, rng, opts);
    }
    std::cout << report.summary() << '\n';
    if (!report.worst_faults.empty()) {
      std::cout << "worst fault set:";
      for (Node v : report.worst_faults) std::cout << ' ' << v;
      std::cout << '\n';
    }
    return report.holds ? 0 : 1;
  });
}

}  // namespace ftr::cli
