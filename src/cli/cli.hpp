// ftroute CLI: one module per verb under src/cli/, a shared strict flag
// framework in cli_support.hpp, and a thin dispatcher (run_cli) that
// tools/ftroute_cli.cpp calls from main().
//
// Every verb rejects unknown flags and missing flag values uniformly (exit
// 2 with the verb's usage on stderr), answers `--help` with usage generated
// from its flag registry (stdout, exit 0), and resolves its execution knobs
// — threads, kernel, lanes, batch, executor, progress cadence — through the
// ONE ExecPolicy authority in common/exec_policy.hpp.
#pragma once

#include <string>
#include <vector>

namespace ftr::cli {

int cmd_gen(const std::vector<std::string>& args);
int cmd_profile(const std::vector<std::string>& args);
int cmd_build(const std::vector<std::string>& args);
int cmd_check(const std::vector<std::string>& args);
int cmd_sweep(const std::vector<std::string>& args);
int cmd_serve(const std::vector<std::string>& args);
int cmd_stretch(const std::vector<std::string>& args);
int cmd_snapshot(const std::vector<std::string>& args);

/// Dispatches argv[1] to its verb (args = argv[1..]). Unknown or missing
/// verbs print the global usage to stderr and return 2.
int run_cli(const std::vector<std::string>& args);

}  // namespace ftr::cli
