#include <iostream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cli/cli.hpp"
#include "cli/cli_support.hpp"
#include "common/rng.hpp"
#include "core/planner.hpp"
#include "routing/serialization.hpp"

namespace ftr::cli {
namespace {

using namespace ftr;

const VerbSpec& spec() {
  static const VerbSpec s{
      .name = "snapshot",
      .positional = "",
      .summary =
          "write the versioned, checksummed binary table snapshot (graph +\n"
          "  table + SRG preprocessing + plan + route-load ranking)",
      .flags =
          {
              {"--graph", "FILE", "graph file (text or snapshot; required)"},
              {"--routes", "FILE", "routing table to snapshot (text or snapshot)"},
              {"--seed", "S",
               "build the routing with this planner seed instead of\n"
               "        --routes (default 42)"},
              {"--out", "FILE", "output snapshot path (required)"},
          },
      .exec_mask = 0,
      .min_positional = 0,
      .max_positional = 0,
      .notes =
          "the <graph>/<table> args of check/sweep/stretch accept the\n"
          "written snapshot too (sniffed by magic, no flag needed)\n",
  };
  return s;
}

}  // namespace

int cmd_snapshot(const std::vector<std::string>& args) {
  return run_verb(spec(), args, [](const ParsedArgs& a) {
    const std::string graph_path = a.str("--graph", "");
    const std::string out_path = a.str("--out", "");
    const std::string routes_path = a.str("--routes", "");
    if (graph_path.empty() || out_path.empty()) {
      throw UsageError("snapshot needs --graph FILE and --out FILE");
    }
    if (!routes_path.empty() && a.has("--seed")) {
      throw UsageError("--routes and --seed are mutually exclusive");
    }
    Graph g = load_graph_arg(graph_path);
    RoutingTable table;
    Plan plan;
    if (!routes_path.empty()) {
      table = load_table_arg(routes_path);
    } else {
      Rng rng(a.u64("--seed", 42));
      auto planned = build_planned_routing(g, std::nullopt, rng);
      table = std::move(planned.table);
      plan = std::move(planned.plan);
    }
    // Validate once at snapshot time — the whole point is that loads never
    // pay this again (they only re-check checksums and structural bounds).
    table.validate(g);
    const TableSnapshot snap =
        make_table_snapshot(std::move(g), std::move(table), std::move(plan));
    save_table_snapshot_file(snap, out_path);
    const auto info = read_snapshot_directory(out_path);
    std::cerr << "snapshot " << out_path << ": " << snap.table.num_nodes()
              << " nodes, " << snap.table.num_routes() << " directed routes, "
              << snap.index->num_pairs() << " pairs, " << info.sections.size()
              << " sections, " << info.file_size << " bytes\n";
    return 0;
  });
}

}  // namespace ftr::cli
