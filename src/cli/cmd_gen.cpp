#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "cli/cli.hpp"
#include "cli/cli_support.hpp"
#include "common/parse.hpp"
#include "common/rng.hpp"
#include "gen/generators.hpp"
#include "graph/graph_io.hpp"

namespace ftr::cli {
namespace {

using namespace ftr;

const VerbSpec& spec() {
  static const VerbSpec s{
      .name = "gen",
      .positional = "<family> <args...>",
      .summary = "generate a graph and write it to stdout",
      .flags = {},
      .exec_mask = 0,
      .min_positional = 1,
      .max_positional = 4,
      .notes =
          "families: cycle n | torus r c | grid r c | hypercube d | ccc d |\n"
          "  wbf d | butterfly d | debruijn d | se d | petersen |\n"
          "  dodecahedron | desargues | gp n k | gnp n p seed | rr n d seed\n",
  };
  return s;
}

GeneratedGraph generate(const std::vector<std::string>& args) {
  const auto& family = args.at(0);
  auto num = [&](std::size_t i) {
    // Strict like the flag parsing: stoull would wrap "gen cycle -1" into
    // an 18-quintillion-node request instead of an error.
    if (i >= args.size()) {
      throw std::runtime_error("missing " + family + " argument");
    }
    const auto v = parse_u64(args.at(i));
    if (!v.has_value()) {
      throw std::runtime_error("bad " + family + " argument '" + args.at(i) +
                               "'");
    }
    return static_cast<std::size_t>(*v);
  };
  if (family == "cycle") return cycle_graph(num(1));
  if (family == "torus") return torus_graph(num(1), num(2));
  if (family == "grid") return grid_graph(num(1), num(2));
  if (family == "hypercube") return hypercube(num(1));
  if (family == "ccc") return cube_connected_cycles(num(1));
  if (family == "wbf") return wrapped_butterfly(num(1));
  if (family == "butterfly") return butterfly(num(1));
  if (family == "debruijn") return de_bruijn(num(1));
  if (family == "se") return shuffle_exchange(num(1));
  if (family == "petersen") return petersen_graph();
  if (family == "dodecahedron") return dodecahedron();
  if (family == "desargues") return desargues_graph();
  if (family == "gp") return generalized_petersen(num(1), num(2));
  if (family == "gnp") {
    if (args.size() < 4) throw std::runtime_error("gnp needs n p seed");
    Rng rng(num(3));
    return gnp(num(1), std::stod(args.at(2)), rng);
  }
  if (family == "rr") {
    Rng rng(num(3));
    return random_regular(num(1), num(2), rng);
  }
  throw std::runtime_error("unknown family: " + family);
}

}  // namespace

int cmd_gen(const std::vector<std::string>& args) {
  return run_verb(spec(), args, [](const ParsedArgs& a) {
    const auto gg = generate(a.positional);
    std::cout << "# " << gg.name << '\n';
    save_graph(gg.graph, std::cout);
    return 0;
  });
}

}  // namespace ftr::cli
